package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func TestBroadcastBinomialStructure(t *testing.T) {
	order := []int{3, 0, 1, 2, 4, 5, 6, 7}
	sched, err := BroadcastBinomial(order)
	if err != nil {
		t.Fatal(err)
	}
	// 8 nodes: 3 doubling stages (1->2->4->8).
	if sched.Stages() != 3 {
		t.Fatalf("stages = %d, want 3", sched.Stages())
	}
	if sched.Transfers() != 7 {
		t.Fatalf("transfers = %d, want 7", sched.Transfers())
	}
	if err := sched.ValidateOneToOne(8); err != nil {
		t.Fatal(err)
	}
	if err := verifyBroadcast(sched, 8, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastBinomialNonPowerOfTwo(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6}
	sched, err := BroadcastBinomial(order)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyBroadcast(sched, 7, 0); err != nil {
		t.Fatal(err)
	}
	if sched.Transfers() != 6 {
		t.Fatalf("transfers = %d, want 6", sched.Transfers())
	}
}

func TestBroadcastClusterAwareCorrect(t *testing.T) {
	clusters := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}}
	sched, err := BroadcastClusterAware(clusters, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(9); err != nil {
		t.Fatal(err)
	}
	if err := verifyBroadcast(sched, 9, 1); err != nil {
		t.Fatal(err)
	}
	// Exactly one transfer into each remote cluster.
	crossInto := map[int]int{}
	clusterOf := map[int]int{}
	for ci, m := range clusters {
		for _, v := range m {
			clusterOf[v] = ci
		}
	}
	for _, stage := range sched {
		for _, tr := range stage {
			if clusterOf[tr.Src] != clusterOf[tr.Dst] {
				crossInto[clusterOf[tr.Dst]]++
			}
		}
	}
	if len(crossInto) != 2 || crossInto[1] != 1 || crossInto[2] != 1 {
		t.Fatalf("cross transfers per cluster = %v, want exactly one each", crossInto)
	}
}

func TestBroadcastClusterAwareRootMissing(t *testing.T) {
	if _, err := BroadcastClusterAware([][]int{{1, 2}}, 0); err == nil {
		t.Fatal("accepted a root outside every cluster")
	}
}

func TestAllToAllRingCoverage(t *testing.T) {
	n := 6
	sched, err := AllToAllRing(n)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stages() != n-1 {
		t.Fatalf("stages = %d, want %d", sched.Stages(), n-1)
	}
	if err := sched.Validate(n); err != nil {
		t.Fatal(err)
	}
	seen := map[Transfer]bool{}
	for _, stage := range sched {
		for _, tr := range stage {
			if seen[tr] {
				t.Fatalf("duplicate transfer %v", tr)
			}
			seen[tr] = true
		}
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("covered %d ordered pairs, want %d", len(seen), n*(n-1))
	}
}

func TestAllToAllClusterAwareCoverage(t *testing.T) {
	clusters := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
	sched, err := AllToAllClusterAware(clusters, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(7); err != nil {
		t.Fatal(err)
	}
	seen := map[Transfer]bool{}
	for _, stage := range sched {
		for _, tr := range stage {
			if seen[tr] {
				t.Fatalf("duplicate transfer %v", tr)
			}
			seen[tr] = true
		}
	}
	if len(seen) != 7*6 {
		t.Fatalf("covered %d ordered pairs, want 42", len(seen))
	}
}

func TestAllToAllClusterAwareBoundsCrossConcurrency(t *testing.T) {
	clusters := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	maxCross := 2
	sched, err := AllToAllClusterAware(clusters, maxCross)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf := func(v int) int {
		if v < 4 {
			return 0
		}
		return 1
	}
	for si, stage := range sched {
		cross := map[[2]int]int{}
		for _, tr := range stage {
			a, b := clusterOf(tr.Src), clusterOf(tr.Dst)
			if a != b {
				cross[[2]int{a, b}]++
			}
		}
		for p, c := range cross {
			if c > maxCross {
				t.Fatalf("stage %d: %d concurrent cross transfers %v, cap %d", si, c, p, maxCross)
			}
		}
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	bad := []Schedule{
		{{{Src: 0, Dst: 0}}}, // self transfer
		{{{Src: 0, Dst: 9}}}, // out of range
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
	// Duplicate destinations are allowed structurally but rejected by
	// the one-to-one discipline.
	dup := Schedule{{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}}
	if err := dup.Validate(4); err != nil {
		t.Errorf("interleaved-style schedule rejected: %v", err)
	}
	if err := dup.ValidateOneToOne(4); err == nil {
		t.Error("one-to-one validation accepted a duplicate destination")
	}
}

func TestVerifyBroadcastCatchesPrematureSource(t *testing.T) {
	// Host 1 sends before it has received.
	s := Schedule{{{Src: 1, Dst: 2}}}
	if err := verifyBroadcast(s, 3, 0); err == nil {
		t.Fatal("premature source accepted")
	}
	// Host 2 never receives.
	s = Schedule{{{Src: 0, Dst: 1}}}
	if err := verifyBroadcast(s, 3, 0); err == nil {
		t.Fatal("incomplete broadcast accepted")
	}
}

func TestExecuteOnFlatNetwork(t *testing.T) {
	eng := sim.NewEngine()
	net := simnet.New(eng)
	sw := net.AddSwitch("sw")
	hosts := make([]int, 8)
	for i := range hosts {
		hosts[i] = net.AddHost("h")
		net.Connect(hosts[i], sw, simnet.LinkSpec{Capacity: simnet.Mbps(890), Latency: 50e-6})
	}
	sched, _ := BroadcastBinomial([]int{0, 1, 2, 3, 4, 5, 6, 7})
	res, err := ExecuteBroadcast(eng, net, hosts, sched, 0, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 || res.Stages != 3 || res.Transfers != 7 {
		t.Fatalf("unexpected result %+v", res)
	}
	// 3 stages of 8 MB at 890 Mbit/s ≈ 3 x 75ms.
	if res.Duration > 0.5 {
		t.Fatalf("flat binomial broadcast took %.3fs, expected ~0.23s", res.Duration)
	}
}

func TestAwareBeatsAgnosticOnBottleneck(t *testing.T) {
	// The headline claim: on the Bordeaux topology the cluster-aware
	// broadcast clearly beats a randomized binomial tree.
	run := func(aware bool) float64 {
		d := topology.BordeauxScaled(16, 16, 0)
		var sched Schedule
		var err error
		if aware {
			clusters := [][]int{{}, {}}
			for i := 0; i < 32; i++ {
				g := d.GroundTruth[i]
				clusters[g] = append(clusters[g], i)
			}
			sched, err = BroadcastClusterAware(clusters, 0)
		} else {
			rng := rand.New(rand.NewSource(3))
			order := []int{0}
			for _, v := range rng.Perm(32) {
				if v != 0 {
					order = append(order, v)
				}
			}
			sched, err = BroadcastBinomial(order)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecuteBroadcast(d.Eng, d.Net, d.Hosts, sched, 0, 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	agnostic := run(false)
	aware := run(true)
	if aware >= agnostic {
		t.Fatalf("aware broadcast %.3fs not faster than agnostic %.3fs", aware, agnostic)
	}
	if agnostic/aware < 1.5 {
		t.Fatalf("speedup only %.2fx; expected a clear win across the 1 GbE bottleneck", agnostic/aware)
	}
}

func TestAllToAllAwareBeatsRingOnBottleneck(t *testing.T) {
	run := func(aware bool) float64 {
		d := topology.BordeauxScaled(8, 8, 0)
		var sched Schedule
		var err error
		if aware {
			clusters := [][]int{{}, {}}
			for i := 0; i < 16; i++ {
				g := d.GroundTruth[i]
				clusters[g] = append(clusters[g], i)
			}
			sched, err = AllToAllClusterAware(clusters, 2)
		} else {
			sched, err = AllToAllRing(16)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(d.Eng, d.Net, d.Hosts, sched, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	ring := run(false)
	aware := run(true)
	// Under ideal fluid sharing the exchange is bottleneck-volume-bound,
	// so cluster awareness cannot win outright (see the scheduler's doc
	// comment); it must, however, stay close to the ring's near-optimal
	// time while bounding concurrent bottleneck flows.
	if aware > 1.3*ring {
		t.Fatalf("aware all-to-all %.3fs regressed vs ring %.3fs", aware, ring)
	}
}

// Property: for any clusters partitioning 2..20 nodes, the cluster-aware
// broadcast is a valid broadcast and covers everyone.
func TestClusterAwareBroadcastAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(19) + 2
		k := rng.Intn(4) + 1
		clusters := make([][]int, k)
		for v := 0; v < n; v++ {
			c := rng.Intn(k)
			clusters[c] = append(clusters[c], v)
		}
		// Drop empty clusters.
		var nonEmpty [][]int
		for _, m := range clusters {
			if len(m) > 0 {
				nonEmpty = append(nonEmpty, m)
			}
		}
		root := rng.Intn(n)
		sched, err := BroadcastClusterAware(nonEmpty, root)
		if err != nil {
			return false
		}
		return sched.Validate(n) == nil && verifyBroadcast(sched, n, root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring all-to-all covers every ordered pair exactly once for
// any n.
func TestRingCoverageProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%30) + 2
		sched, err := AllToAllRing(n)
		if err != nil {
			return false
		}
		seen := map[Transfer]bool{}
		for _, stage := range sched {
			for _, tr := range stage {
				if seen[tr] {
					return false
				}
				seen[tr] = true
			}
		}
		return len(seen) == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
