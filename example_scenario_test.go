package repro

// Runnable godoc examples for the declarative scenario API. The outputs
// are exact: the simulator is deterministic, so the clustering and NMI a
// spec produces are reproducible bit-for-bit.

import (
	"fmt"
	"log"
	"os"
)

// A scenario is declared fluently: link classes, a switch fabric, host
// groups with their ground-truth clusters. Spec() validates the result.
func ExampleNewSpec() {
	spec, err := NewSpec("twin").
		Note("two flat sites joined by a slow WAN").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		Spec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d hosts in %d ground-truth clusters\n",
		spec.Name, spec.NumHosts(), len(spec.Clusters()))
	// Output: twin: 8 hosts in 2 ground-truth clusters
}

// Specs are JSON files: write one by hand (or SaveSpec a built one) and
// load it back; LoadSpec validates before returning.
func ExampleLoadSpec() {
	f, err := os.CreateTemp("", "spec*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	f.WriteString(`{
	  "name": "pair",
	  "links": [{"name": "eth", "mbps": 890, "latency_s": 5e-05}],
	  "switches": [{"name": "sw"}],
	  "groups": [
	    {"prefix": "h", "count": 2, "switch": "sw", "link": "eth", "cluster": "all"}
	  ]
	}`)
	f.Close()

	spec, err := LoadSpec(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d hosts on switch %s\n",
		spec.Name, spec.NumHosts(), spec.Groups[0].Switch)
	// Output: loaded pair: 2 hosts on switch sw
}

// RunSpec compiles a spec and measures it in one call; Workers > 1 fans
// the broadcasts out over simulator replicas with bit-identical results.
func ExampleRunSpec() {
	spec, err := NewSpec("twin").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		Spec()
	if err != nil {
		log.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Iterations = 4
	opts.BT.FileBytes = 3000 * opts.BT.FragmentSize
	opts.Workers = 2

	res, err := RunSpec(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d clusters, NMI vs declared truth = %.3f\n",
		res.Partition.NumClusters(), res.NMI)
	// Output: found 2 clusters, NMI vs declared truth = 1.000
}

// A scenario becomes time-varying by scripting a Dynamics timeline: link
// drift, failures, host churn and traffic bursts, replayed
// deterministically on every measurement replica (any Workers count
// yields bit-identical results). Here the WAN degrades mid-run while a
// host churns out and back and a burst crosses the fabric; NMI is scored
// against the hosts present each iteration.
func ExampleNewSpec_dynamics() {
	spec, err := NewSpec("failover").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		LinkScale(3, "wan", 0.5).             // the WAN degrades from iteration 3
		HostLeave(2, "right-3").              // a host churns out...
		HostJoin(4, "right-3").               // ...and returns
		Burst(3, 1, "left-0", "right-0", 16). // 16 MB of cross traffic in iteration 3
		Spec()
	if err != nil {
		log.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Iterations = 4
	opts.BT.FileBytes = 3000 * opts.BT.FragmentSize
	opts.Workers = 2

	res, err := RunSpec(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	away := len(res.Iterations[1].ActiveHosts)
	fmt.Printf("%d scripted events; %d hosts while churned; %d clusters, NMI %.3f\n",
		len(spec.Dynamics), away, res.Partition.NumClusters(), res.NMI)
	// Output: 4 scripted events; 7 hosts while churned; 2 clusters, NMI 1.000
}
