package repro

// Runnable godoc examples for the declarative scenario API. The outputs
// are exact: the simulator is deterministic, so the clustering and NMI a
// spec produces are reproducible bit-for-bit.

import (
	"fmt"
	"log"
	"os"
)

// A scenario is declared fluently: link classes, a switch fabric, host
// groups with their ground-truth clusters. Spec() validates the result.
func ExampleNewSpec() {
	spec, err := NewSpec("twin").
		Note("two flat sites joined by a slow WAN").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		Spec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d hosts in %d ground-truth clusters\n",
		spec.Name, spec.NumHosts(), len(spec.Clusters()))
	// Output: twin: 8 hosts in 2 ground-truth clusters
}

// Specs are JSON files: write one by hand (or SaveSpec a built one) and
// load it back; LoadSpec validates before returning.
func ExampleLoadSpec() {
	f, err := os.CreateTemp("", "spec*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	f.WriteString(`{
	  "name": "pair",
	  "links": [{"name": "eth", "mbps": 890, "latency_s": 5e-05}],
	  "switches": [{"name": "sw"}],
	  "groups": [
	    {"prefix": "h", "count": 2, "switch": "sw", "link": "eth", "cluster": "all"}
	  ]
	}`)
	f.Close()

	spec, err := LoadSpec(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d hosts on switch %s\n",
		spec.Name, spec.NumHosts(), spec.Groups[0].Switch)
	// Output: loaded pair: 2 hosts on switch sw
}

// RunSpec compiles a spec and measures it in one call; Workers > 1 fans
// the broadcasts out over simulator replicas with bit-identical results.
func ExampleRunSpec() {
	spec, err := NewSpec("twin").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		Spec()
	if err != nil {
		log.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Iterations = 4
	opts.BT.FileBytes = 3000 * opts.BT.FragmentSize
	opts.Workers = 2

	res, err := RunSpec(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d clusters, NMI vs declared truth = %.3f\n",
		res.Partition.NumClusters(), res.NMI)
	// Output: found 2 clusters, NMI vs declared truth = 1.000
}
