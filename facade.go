package repro

// Facade re-exports for the subsystems a downstream user needs alongside
// the tomography pipeline: measurement archival and topology-aware
// collective scheduling. Everything is a thin alias over the internal
// packages so external importers of module "repro" can reach them.
//
// All entry points here operate on completed results and are agnostic to
// how the measurement ran: a Result produced with Options.Workers > 1 is
// bit-identical to a sequential one, so archived graphs, bottleneck
// reports and collective schedules never depend on the worker count.

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
)

// MeasurementGraph is the aggregated w(e) graph produced by Run (also the
// type of Result.Graph).
type MeasurementGraph = graph.Graph

// SaveMeasurement archives a measurement graph as JSON, so the analysis
// phase can be re-run later without re-measuring (see also
// `bttomo -save/-load`).
func SaveMeasurement(path string, g *MeasurementGraph) error {
	return persist.SaveGraph(path, g)
}

// LoadMeasurement reads an archived measurement graph.
func LoadMeasurement(path string) (*MeasurementGraph, error) {
	return persist.LoadGraph(path)
}

// SaveSpec writes a scenario spec to a JSON file — the declarative
// interchange format for scenarios (`bttomo -spec`, LoadSpec).
func SaveSpec(path string, s *Spec) error {
	return persist.SaveSpec(path, s)
}

// LoadSpec reads and validates a scenario spec from a JSON file. The
// loaded spec can be run directly (RunSpec) or added to the registry
// (RegisterSpec).
func LoadSpec(path string) (*Spec, error) {
	return persist.LoadSpec(path)
}

// Boundary describes the measured traffic across one discovered cluster
// boundary — an explicit bottleneck report.
type Boundary = core.Boundary

// Bottlenecks summarises every cluster boundary of a result: which
// cluster pairs are separated and how starved their cross traffic is
// relative to intra-cluster traffic (the paper's "correctly identified
// communication bottleneck links", §V).
func Bottlenecks(res *Result) []Boundary {
	return core.Bottlenecks(res.Graph, res.Partition)
}

// Schedule is a staged collective-communication plan: stages run
// sequentially, transfers within a stage run concurrently.
type Schedule = collective.Schedule

// Transfer is one point-to-point message within a Schedule stage.
type Transfer = collective.Transfer

// CollectiveResult reports an executed schedule's timing.
type CollectiveResult = collective.Result

// BroadcastBinomial builds the topology-agnostic binomial-tree broadcast
// over the given host order (first entry is the root).
func BroadcastBinomial(order []int) (Schedule, error) {
	return collective.BroadcastBinomial(order)
}

// BroadcastClusterAware builds a hierarchical broadcast over logical
// clusters (e.g. Result.Partition.Clusters()): each inter-cluster
// bottleneck is crossed exactly once.
func BroadcastClusterAware(clusters [][]int, root int) (Schedule, error) {
	return collective.BroadcastClusterAware(clusters, root)
}

// ReduceClusterAware builds the hierarchical reduction dual to
// BroadcastClusterAware.
func ReduceClusterAware(clusters [][]int, root int) (Schedule, error) {
	return collective.ReduceClusterAware(clusters, root)
}

// ExecuteBroadcast validates and runs a broadcast schedule on a dataset's
// network, returning its completion time.
func ExecuteBroadcast(d *Dataset, sched Schedule, root int, bytes float64) (CollectiveResult, error) {
	return collective.ExecuteBroadcast(d.Eng, d.Net, d.Hosts, sched, root, bytes)
}

// ExecuteReduce validates and runs a reduce schedule on a dataset's
// network.
func ExecuteReduce(d *Dataset, sched Schedule, root int, bytes float64) (CollectiveResult, error) {
	return collective.ExecuteReduce(d.Eng, d.Net, d.Hosts, sched, root, bytes)
}
