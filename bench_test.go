package repro_test

// The benchmark harness: one benchmark per table/figure of the paper (the
// E1-E14 index in DESIGN.md), plus micro-benchmarks of the hot substrate
// paths and ablation benches for the design knobs.
//
// Benchmarks run the experiments at reduced payload scale (the iteration
// dynamics and protocol parameters stay faithful); cmd/experiments runs
// the same code at full paper scale. Domain results are attached to each
// benchmark via b.ReportMetric: nmi (clustering accuracy), simsec
// (simulated measurement time), ratio (Fig. 4 locality), etc.

import (
	"io"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/nmi"
	"repro/internal/topology"
)

// benchScale keeps go test -bench=. tractable for the heavy sweep
// benchmarks: 5% of the 239 MB payload. Dataset-level benchmarks use
// datasetScale instead — a quarter payload, the smallest at which the
// multi-site clusterings converge within their benchmarked iteration
// counts (the per-edge signal scales with payload; see EXPERIMENTS.md).
const (
	benchScale   = 0.05
	datasetScale = 0.25
)

func runner(iters int) *experiments.Runner {
	return experiments.New(experiments.Config{
		Scale:      benchScale,
		Iterations: iters,
		Seed:       1,
		Out:        io.Discard,
	})
}

// BenchmarkFig4LocalVsRemote regenerates E1/Fig.4: per-edge fragment
// counts to a fixed node, local versus remote peers (BT dataset).
func BenchmarkFig4LocalVsRemote(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		data, err := runner(6).Fig4()
		if err != nil {
			b.Fatal(err)
		}
		ratio = data.Ratio
	}
	b.ReportMetric(ratio, "local/remote")
}

// BenchmarkFig5EdgeVariance regenerates E2/Fig.5: the single-run w(e)
// distribution of one fixed edge (B dataset).
func BenchmarkFig5EdgeVariance(b *testing.B) {
	var cv float64
	var zeros int
	for i := 0; i < b.N; i++ {
		data, err := runner(8).Fig5()
		if err != nil {
			b.Fatal(err)
		}
		cv = data.Summary.CoefficientOfVar
		zeros = data.ZeroRuns
	}
	b.ReportMetric(cv, "cv")
	b.ReportMetric(float64(zeros), "zero-runs")
}

// BenchmarkE3BroadcastScaling regenerates E3/§II-B: broadcast duration at
// 32/64/128 nodes and across message sizes.
func BenchmarkE3BroadcastScaling(b *testing.B) {
	var d32, d128 float64
	for i := 0; i < b.N; i++ {
		data, err := runner(0).Efficiency()
		if err != nil {
			b.Fatal(err)
		}
		d32, d128 = data.NodeDurations[0], data.NodeDurations[2]
	}
	b.ReportMetric(d32, "simsec-32nodes")
	b.ReportMetric(d128, "simsec-128nodes")
}

// BenchmarkE4BaselineCost regenerates E4: measurement cost of the
// BitTorrent method versus pairwise/triplet saturation tomography.
func BenchmarkE4BaselineCost(b *testing.B) {
	var oursSec, pairSec float64
	for i := 0; i < b.N; i++ {
		data, err := runner(5).Cost()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range data.Rows {
			if row.Nodes == 20 {
				switch row.Method {
				case "bittorrent (15 iters)":
					oursSec = row.Seconds
				case "pairwise idle":
					pairSec = row.Seconds
				}
			}
		}
	}
	b.ReportMetric(oursSec, "ours-simsec-20n")
	b.ReportMetric(pairSec, "pairwise-simsec-20n")
}

// BenchmarkE5NetPipe regenerates E5/§IV-A: point-to-point bandwidths.
func BenchmarkE5NetPipe(b *testing.B) {
	var intra, inter float64
	for i := 0; i < b.N; i++ {
		data, err := runner(0).NetPipe()
		if err != nil {
			b.Fatal(err)
		}
		intra, inter = data.IntraMbps, data.InterMbps
	}
	b.ReportMetric(intra, "intra-mbps")
	b.ReportMetric(inter, "inter-mbps")
}

// benchDataset runs one dataset end to end and reports its NMI.
func benchDataset(b *testing.B, name string, iters int) {
	b.Helper()
	var lastNMI float64
	var clusters int
	for i := 0; i < b.N; i++ {
		opts := repro.DefaultOptions()
		opts.Iterations = iters
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * datasetScale)
		res, err := repro.RunNamed(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		lastNMI = res.NMI
		clusters = res.Partition.NumClusters()
	}
	b.ReportMetric(lastNMI, "nmi")
	b.ReportMetric(float64(clusters), "clusters")
}

// BenchmarkE6TwoByTwo regenerates E6/§IV-B1 (single logical cluster).
func BenchmarkE6TwoByTwo(b *testing.B) { benchDataset(b, "2x2", 8) }

// BenchmarkE7DatasetB regenerates E7/Fig.8 (Bordeaux, 2 logical clusters).
func BenchmarkE7DatasetB(b *testing.B) { benchDataset(b, "B", 12) }

// BenchmarkE8DatasetBT regenerates E8/Fig.9 (NMI plateaus ≈0.6-0.7
// against the 3-part hierarchical truth).
func BenchmarkE8DatasetBT(b *testing.B) { benchDataset(b, "BT", 12) }

// BenchmarkE9DatasetGT regenerates E9/Fig.10 (one cluster per site).
func BenchmarkE9DatasetGT(b *testing.B) { benchDataset(b, "GT", 12) }

// BenchmarkE10DatasetBGT regenerates E10/Fig.11 (three sites).
func BenchmarkE10DatasetBGT(b *testing.B) { benchDataset(b, "BGT", 12) }

// BenchmarkE11DatasetBGTL regenerates E11/Fig.12 (four sites — the
// paper's hardest setting, needing the most iterations).
func BenchmarkE11DatasetBGTL(b *testing.B) { benchDataset(b, "BGTL", 30) }

// BenchmarkE12Convergence regenerates E12/Fig.13: the NMI-vs-iterations
// curves for all datasets (reduced iteration counts at bench scale).
func BenchmarkE12Convergence(b *testing.B) {
	var stable float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.New(experiments.Config{
			Scale: datasetScale, Iterations: 12, Seed: 1, Out: io.Discard,
		}).Datasets()
		if err != nil {
			b.Fatal(err)
		}
		// Report the hardest setting's convergence point.
		for _, o := range data.Outcomes {
			if o.Name == "BGTL" {
				stable = float64(o.ConvergedAt)
			}
		}
	}
	b.ReportMetric(stable, "bgtl-stable-iter")
}

// BenchmarkE13LouvainVsInfomap regenerates E13/§III-D.
func BenchmarkE13LouvainVsInfomap(b *testing.B) {
	var lou, info float64
	for i := 0; i < b.N; i++ {
		data, err := runner(6).Ablation()
		if err != nil {
			b.Fatal(err)
		}
		lou, info = data.Rows[0].LouvainNMI, data.Rows[0].InfomapNMI
	}
	b.ReportMetric(lou, "louvain-nmi")
	b.ReportMetric(info, "infomap-nmi")
}

// BenchmarkE14Layout regenerates the Figs. 8-12 Kamada-Kawai embedding on
// a measured B-dataset graph.
func BenchmarkE14Layout(b *testing.B) {
	opts := repro.DefaultOptions()
	opts.Iterations = 4
	opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * benchScale)
	res, err := repro.RunNamed("B", opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := layout.KamadaKawai(res.Graph, layout.DefaultOptions())
		if len(pos) != res.Graph.N() {
			b.Fatal("bad layout")
		}
	}
}

// --- parallel measurement benches ------------------------------------

// benchParallelBGTL runs the E11-class BGTL workload (the paper's hardest
// setting) with a given measurement fan-out. The Workers1/2/4 trio
// measures the scaling of the parallel pipeline; results are bit-identical
// across the trio, only wall-clock changes. `make bench` times the same
// workload via cmd/benchparallel and emits BENCH_parallel.json.
func benchParallelBGTL(b *testing.B, workers int) {
	b.Helper()
	var lastNMI float64
	for i := 0; i < b.N; i++ {
		opts := repro.DefaultOptions()
		opts.Iterations = 8
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * benchScale)
		opts.Workers = workers
		res, err := repro.RunNamed("BGTL", opts)
		if err != nil {
			b.Fatal(err)
		}
		lastNMI = res.NMI
	}
	b.ReportMetric(lastNMI, "nmi")
}

// BenchmarkParallelBGTLWorkers1 is the single-worker replica baseline.
func BenchmarkParallelBGTLWorkers1(b *testing.B) { benchParallelBGTL(b, 1) }

// BenchmarkParallelBGTLWorkers2 doubles the measurement fan-out.
func BenchmarkParallelBGTLWorkers2(b *testing.B) { benchParallelBGTL(b, 2) }

// BenchmarkParallelBGTLWorkers4 is the fan-out the CI bench smoke tracks.
func BenchmarkParallelBGTLWorkers4(b *testing.B) { benchParallelBGTL(b, 4) }

// --- substrate micro-benchmarks -------------------------------------

// BenchmarkBroadcast64Nodes measures one instrumented broadcast on the GT
// network at bench scale (the unit of the measurement phase).
func BenchmarkBroadcast64Nodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := repro.DefaultOptions()
		opts.Iterations = 1
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * benchScale)
		if _, err := repro.RunNamed("GT", opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinSolver measures the fluid bandwidth allocator with 256
// concurrent flows on a two-site topology — the simulator's hot path.
func BenchmarkMaxMinSolver(b *testing.B) {
	d := topology.GT()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 256; i++ {
		src := d.Hosts[rng.Intn(32)]
		dst := d.Hosts[32+rng.Intn(32)]
		d.Net.StartFlow(src, dst, 1e12, nil)
	}
	// Let the flows activate and the first solve happen.
	d.Eng.RunUntil(d.Eng.Now() + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb the flow set to force a re-solve.
		f := d.Net.StartFlow(d.Hosts[0], d.Hosts[63], 1e12, nil)
		d.Eng.RunUntil(d.Eng.Now() + 0.001)
		d.Net.CancelFlow(f)
		d.Eng.RunUntil(d.Eng.Now() + 0.001)
	}
	b.ReportMetric(float64(d.Net.Solves())/float64(b.N), "solves/op")
}

// BenchmarkLouvain64 measures the clustering phase alone on a dense
// 64-vertex measurement-like graph.
func BenchmarkLouvain64(b *testing.B) {
	g := syntheticMeasurement(64, 2, 4.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cluster.Louvain(g, rand.New(rand.NewSource(int64(i))))
		if res.Partition.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkInfomap64 measures the baseline clustering method.
func BenchmarkInfomap64(b *testing.B) {
	g := syntheticMeasurement(64, 2, 4.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cluster.Infomap(g, rand.New(rand.NewSource(int64(i))))
		if res.Partition.N() != 64 {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkNMI64 measures the LFK NMI evaluation.
func BenchmarkNMI64(b *testing.B) {
	truth := make([]int, 64)
	found := make([]int, 64)
	for i := range truth {
		truth[i] = i / 16
		found[i] = i / 8 % 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := nmi.LFKPartition(truth, found)
		if v < 0 || v > 1 {
			b.Fatal("NMI out of range")
		}
	}
}

// --- ablation benches (design knobs called out in DESIGN.md) ---------

func benchKnob(b *testing.B, mutate func(*repro.Options)) {
	var lastNMI float64
	for i := 0; i < b.N; i++ {
		opts := repro.DefaultOptions()
		opts.Iterations = 10
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * datasetScale)
		mutate(&opts)
		res, err := repro.RunNamed("GT", opts)
		if err != nil {
			b.Fatal(err)
		}
		lastNMI = res.NMI
	}
	b.ReportMetric(lastNMI, "nmi")
}

// BenchmarkAblationBatch4 varies the request batch granularity down.
func BenchmarkAblationBatch4(b *testing.B) {
	benchKnob(b, func(o *repro.Options) { o.BT.BatchFragments = 4 })
}

// BenchmarkAblationBatch64 varies the request batch granularity up.
func BenchmarkAblationBatch64(b *testing.B) {
	benchKnob(b, func(o *repro.Options) { o.BT.BatchFragments = 64 })
}

// BenchmarkAblationRotateRoot enables the §II-C root-rotation mitigation.
func BenchmarkAblationRotateRoot(b *testing.B) {
	benchKnob(b, func(o *repro.Options) { o.RotateRoot = true })
}

// BenchmarkAblationTopHalfEdges clusters on the top-50% edge filter the
// paper uses for its visualisations.
func BenchmarkAblationTopHalfEdges(b *testing.B) {
	benchKnob(b, func(o *repro.Options) { o.TopFraction = 0.5 })
}

// BenchmarkAblationNoPeerCap removes the 35-peer cap (§II-C), measuring
// every edge each run.
func BenchmarkAblationNoPeerCap(b *testing.B) {
	benchKnob(b, func(o *repro.Options) { o.BT.MaxPeers = 1 << 20 })
}

// syntheticMeasurement builds a graph shaped like an aggregated
// measurement: k planted clusters with intra weights `contrast` times the
// inter weights, plus noise.
func syntheticMeasurement(n, k int, contrast float64) *graph.Graph {
	rng := rand.New(rand.NewSource(7))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := 100 + 50*rng.Float64()
			if i%k == j%k {
				w *= contrast
			}
			g.AddWeight(i, j, w)
		}
	}
	return g
}
