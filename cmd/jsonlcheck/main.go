// Command jsonlcheck validates JSONL files: every line must be a
// well-formed JSON object, and the whole file must satisfy a schema. It
// is the strict complement to the tolerant readers — queries skip torn
// lines by design, so CI needs a checker that refuses them.
//
// Usage:
//
//	jsonlcheck [-schema trace|events|trajectory] FILE.jsonl ...
//
// Schemas:
//
//	trace       (default) phase-trace files: at least one span (an
//	            object with a "name") after the header line
//	events      the archive event stream's payload lines: integer ids
//	            strictly increasing from >= 1, a non-empty kind, and
//	            any key a 64-hex content address
//	trajectory  BENCH_trajectory.jsonl: per-PR benchmark snapshots with
//	            non-decreasing unix timestamps, a dataset, and a
//	            positive measured speedup
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
)

func main() {
	schema := flag.String("schema", "trace", "file schema to enforce: trace, events, or trajectory")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck [-schema trace|events|trajectory] FILE.jsonl ...")
		os.Exit(2)
	}
	var lineCheck func(obj map[string]any, st *fileState) error
	var fileCheck func(st *fileState) error
	switch *schema {
	case "trace":
		lineCheck, fileCheck = traceLine, traceFile
	case "events":
		lineCheck, fileCheck = eventsLine, noFileCheck
	case "trajectory":
		lineCheck, fileCheck = trajectoryLine, noFileCheck
	default:
		fmt.Fprintf(os.Stderr, "jsonlcheck: unknown -schema %q\n", *schema)
		os.Exit(2)
	}
	bad := 0
	for _, path := range flag.Args() {
		if err := check(path, lineCheck, fileCheck); err != nil {
			fmt.Fprintf(os.Stderr, "jsonlcheck: %s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("jsonlcheck: %d files ok (%s)\n", flag.NArg(), *schema)
}

// fileState accumulates across the lines of one file; the schemas use
// it for cross-line invariants (span counts, monotonic ids).
type fileState struct {
	lines    int
	spans    int
	lastID   float64
	lastUnix float64
}

func check(path string, lineCheck func(map[string]any, *fileState) error, fileCheck func(*fileState) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	st := &fileState{}
	for sc.Scan() {
		st.lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return fmt.Errorf("line %d: %v", st.lines, err)
		}
		if err := lineCheck(obj, st); err != nil {
			return fmt.Errorf("line %d: %v", st.lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if st.lines == 0 {
		return fmt.Errorf("empty file")
	}
	return fileCheck(st)
}

func noFileCheck(*fileState) error { return nil }

func traceLine(obj map[string]any, st *fileState) error {
	if name, ok := obj["name"].(string); ok && name != "" {
		st.spans++
	}
	return nil
}

func traceFile(st *fileState) error {
	if st.spans == 0 {
		return fmt.Errorf("%d lines but no spans", st.lines)
	}
	return nil
}

func eventsLine(obj map[string]any, st *fileState) error {
	id, ok := obj["id"].(float64)
	if !ok || id < 1 || id != float64(int64(id)) {
		return fmt.Errorf("id must be an integer >= 1, got %v", obj["id"])
	}
	if id <= st.lastID {
		return fmt.Errorf("id %v not strictly increasing (previous %v)", id, st.lastID)
	}
	st.lastID = id
	if kind, ok := obj["kind"].(string); !ok || kind == "" {
		return fmt.Errorf("kind must be a non-empty string, got %v", obj["kind"])
	}
	if raw, present := obj["key"]; present {
		key, ok := raw.(string)
		if !ok || !fleet.IsArchiveKey(key) {
			return fmt.Errorf("key must be a 64-hex content address, got %v", raw)
		}
	}
	return nil
}

func trajectoryLine(obj map[string]any, st *fileState) error {
	unix, ok := obj["unix"].(float64)
	if !ok || unix <= 0 {
		return fmt.Errorf("unix must be a positive timestamp, got %v", obj["unix"])
	}
	if unix < st.lastUnix {
		return fmt.Errorf("unix %v goes backwards (previous %v)", unix, st.lastUnix)
	}
	st.lastUnix = unix
	if ds, ok := obj["dataset"].(string); !ok || ds == "" {
		return fmt.Errorf("dataset must be a non-empty string, got %v", obj["dataset"])
	}
	if w, ok := obj["workers"].(float64); !ok || w < 1 {
		return fmt.Errorf("workers must be >= 1, got %v", obj["workers"])
	}
	if sp, ok := obj["speedup"].(float64); !ok || sp <= 0 {
		return fmt.Errorf("speedup must be positive, got %v", obj["speedup"])
	}
	return nil
}
