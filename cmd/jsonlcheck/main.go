// Command jsonlcheck validates trace JSONL files: every line must be a
// well-formed JSON object, and every file must contain at least one
// span (an object with a "name") after its header line. It is the
// strict complement to the tolerant readers — queries skip torn lines
// by design, so CI needs a checker that refuses them.
//
// Usage:
//
//	jsonlcheck traces/*.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck FILE.jsonl ...")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "jsonlcheck: %s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("jsonlcheck: %d files ok\n", len(os.Args)-1)
}

func check(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line, spans := 0, 0
	for sc.Scan() {
		line++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if name, ok := obj["name"].(string); ok && name != "" {
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty file")
	}
	if spans == 0 {
		return fmt.Errorf("%d lines but no spans", line)
	}
	return nil
}
