// Command collective demonstrates the paper's motivating application:
// after tomography discovers the logical bandwidth clusters of a network,
// collective operations can be scheduled topology-aware. It measures the
// clusters of a dataset, then times agnostic versus cluster-aware
// schedules for broadcast, reduce and all-to-all on the same network.
//
// Usage:
//
//	collective -dataset B -payload 64
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro"
	"repro/internal/collective"
	"repro/internal/report"
)

func main() {
	var (
		dataset   = flag.String("dataset", "B", "dataset: "+strings.Join(repro.Datasets(), ", "))
		payloadMB = flag.Int("payload", 64, "per-transfer payload in MB")
		iters     = flag.Int("iterations", 5, "tomography iterations before scheduling")
		scale     = flag.Float64("scale", 0.5, "tomography payload scale")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*dataset, *payloadMB, *iters, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "collective:", err)
		os.Exit(1)
	}
}

func run(dataset string, payloadMB, iters int, scale float64, seed int64) error {
	d, err := repro.NewDataset(dataset)
	if err != nil {
		return err
	}
	opts := repro.DefaultOptions()
	opts.Iterations = iters
	opts.Seed = seed
	opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
	if opts.BT.FileBytes < opts.BT.FragmentSize {
		opts.BT.FileBytes = opts.BT.FragmentSize
	}
	res, err := repro.Run(d, opts)
	if err != nil {
		return err
	}
	clusters := res.Partition.Clusters()
	fmt.Printf("tomography on %s: %d clusters (NMI %.3f vs ground truth)\n\n",
		d.Name, len(clusters), res.NMI)

	payload := float64(payloadMB << 20)
	rng := rand.New(rand.NewSource(seed))
	order := []int{0}
	for _, v := range rng.Perm(d.N()) {
		if v != 0 {
			order = append(order, v)
		}
	}

	t := &report.Table{
		Title:  fmt.Sprintf("collective timings on %s (%d MB per transfer)", d.Name, payloadMB),
		Header: []string{"operation", "schedule", "stages", "transfers", "seconds"},
	}

	bAgn, err := collective.BroadcastBinomial(order)
	if err != nil {
		return err
	}
	r, err := collective.ExecuteBroadcast(d.Eng, d.Net, d.Hosts, bAgn, 0, payload)
	if err != nil {
		return err
	}
	t.AddRow("broadcast", "binomial (agnostic)", r.Stages, r.Transfers, r.Duration)

	bAware, err := collective.BroadcastClusterAware(clusters, 0)
	if err != nil {
		return err
	}
	r, err = collective.ExecuteBroadcast(d.Eng, d.Net, d.Hosts, bAware, 0, payload)
	if err != nil {
		return err
	}
	t.AddRow("broadcast", "cluster-aware", r.Stages, r.Transfers, r.Duration)

	rAgn, err := collective.ReduceBinomial(order)
	if err != nil {
		return err
	}
	r, err = collective.ExecuteReduce(d.Eng, d.Net, d.Hosts, rAgn, 0, payload)
	if err != nil {
		return err
	}
	t.AddRow("reduce", "binomial (agnostic)", r.Stages, r.Transfers, r.Duration)

	rAware, err := collective.ReduceClusterAware(clusters, 0)
	if err != nil {
		return err
	}
	r, err = collective.ExecuteReduce(d.Eng, d.Net, d.Hosts, rAware, 0, payload)
	if err != nil {
		return err
	}
	t.AddRow("reduce", "cluster-aware", r.Stages, r.Transfers, r.Duration)

	aRing, err := collective.AllToAllRing(d.N())
	if err != nil {
		return err
	}
	r, err = collective.Execute(d.Eng, d.Net, d.Hosts, aRing, payload/8)
	if err != nil {
		return err
	}
	t.AddRow("all-to-all", "ring (agnostic)", r.Stages, r.Transfers, r.Duration)

	aAware, err := collective.AllToAllClusterAware(clusters, 2)
	if err != nil {
		return err
	}
	r, err = collective.Execute(d.Eng, d.Net, d.Hosts, aAware, payload/8)
	if err != nil {
		return err
	}
	t.AddRow("all-to-all", "cluster-aware (bounded cross)", r.Stages, r.Transfers, r.Duration)

	return t.Write(os.Stdout)
}
