// Command topoviz measures a dataset with BitTorrent tomography and emits
// the Kamada-Kawai visualisation of the measurement graph (Figs. 8-12 of
// the paper) as Graphviz DOT and standalone SVG.
//
// Usage:
//
//	topoviz -dataset BGTL -iterations 15 -o bgtl
//	# writes bgtl.dot and bgtl.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/layout"
)

func main() {
	var (
		dataset    = flag.String("dataset", "B", "dataset: "+strings.Join(repro.Datasets(), ", "))
		iterations = flag.Int("iterations", 10, "broadcast iterations to aggregate")
		scale      = flag.Float64("scale", 1.0, "broadcast payload scale")
		seed       = flag.Int64("seed", 1, "random seed")
		edges      = flag.Float64("edges", 0.5, "fraction of strongest edges to draw (the paper draws 0.5)")
		outBase    = flag.String("o", "", "output base name (default: the dataset name)")
	)
	flag.Parse()

	if err := run(*dataset, *iterations, *scale, *seed, *edges, *outBase); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(dataset string, iterations int, scale float64, seed int64, edges float64, outBase string) error {
	d, err := repro.NewDataset(dataset)
	if err != nil {
		return err
	}
	opts := repro.DefaultOptions()
	opts.Iterations = iterations
	opts.Seed = seed
	opts.ClusterEvery = 0
	if scale > 0 && scale != 1 {
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
		if opts.BT.FileBytes < opts.BT.FragmentSize {
			opts.BT.FileBytes = opts.BT.FragmentSize
		}
	}
	res, err := repro.Run(d, opts)
	if err != nil {
		return err
	}
	pos := layout.KamadaKawai(res.Graph, layout.DefaultOptions())
	ropts := layout.RenderOptions{Truth: d.GroundTruth, EdgeFraction: edges, Scale: 10}

	if outBase == "" {
		outBase = strings.ToLower(dataset)
	}
	dot, err := os.Create(outBase + ".dot")
	if err != nil {
		return err
	}
	defer dot.Close()
	if err := layout.WriteDOT(dot, res.Graph, pos, ropts); err != nil {
		return err
	}
	svg, err := os.Create(outBase + ".svg")
	if err != nil {
		return err
	}
	defer svg.Close()
	if err := layout.WriteSVG(svg, res.Graph, pos, ropts); err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d measured edges; wrote %s.dot and %s.svg (NMI vs truth: %.3f)\n",
		d.Name, res.Graph.N(), res.Graph.EdgeCount(), outBase, outBase, res.NMI)
	return nil
}
