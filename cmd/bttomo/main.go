// Command bttomo runs BitTorrent bandwidth tomography on one of the
// built-in Grid'5000 datasets and prints the discovered logical clusters,
// their modularity, and the NMI against the ground truth.
//
// Usage:
//
//	bttomo -dataset GT -iterations 10 -scale 0.25 -seed 7 -fig13
//	bttomo -dataset B -save b.json        # archive the measurement graph
//	bttomo -load b.json                   # re-cluster an archived graph
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/persist"
	"repro/internal/report"
)

func main() {
	var (
		dataset    = flag.String("dataset", "GT", "dataset: "+strings.Join(repro.Datasets(), ", "))
		iterations = flag.Int("iterations", 10, "number of BitTorrent broadcast iterations")
		scale      = flag.Float64("scale", 1.0, "broadcast payload scale (1.0 = the paper's 239 MB)")
		seed       = flag.Int64("seed", 1, "random seed")
		rotate     = flag.Bool("rotate-root", false, "rotate the broadcast root across iterations")
		workers    = flag.Int("workers", 0, "parallel measurement workers (0 = sequential; results are identical for any workers >= 1)")
		fig13      = flag.Bool("fig13", false, "print the per-iteration NMI convergence series")
		save       = flag.String("save", "", "write the aggregated measurement graph to this JSON file")
		load       = flag.String("load", "", "skip measurement: cluster an archived measurement graph")
	)
	flag.Parse()

	if *load != "" {
		if err := runArchived(*load, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "bttomo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dataset, *iterations, *scale, *seed, *workers, *rotate, *fig13, *save); err != nil {
		fmt.Fprintln(os.Stderr, "bttomo:", err)
		os.Exit(1)
	}
}

// runArchived clusters a previously saved measurement graph without
// re-measuring.
func runArchived(path string, seed int64) error {
	g, err := persist.LoadGraph(path)
	if err != nil {
		return err
	}
	res := cluster.Louvain(g, rand.New(rand.NewSource(seed)))
	fmt.Printf("archived measurement %s: %d nodes, %d edges\n", path, g.N(), g.EdgeCount())
	fmt.Printf("clustering: %d clusters, modularity Q=%.3f\n\n", res.Partition.NumClusters(), res.Q)
	for ci, members := range res.Partition.Clusters() {
		names := make([]string, 0, len(members))
		for _, v := range members {
			names = append(names, g.Label(v))
		}
		fmt.Printf("cluster %d (%d nodes): %s\n", ci, len(members), strings.Join(names, " "))
	}
	return nil
}

func run(dataset string, iterations int, scale float64, seed int64, workers int, rotate, fig13 bool, save string) error {
	d, err := repro.NewDataset(dataset)
	if err != nil {
		return err
	}
	opts := repro.DefaultOptions()
	opts.Iterations = iterations
	opts.Seed = seed
	opts.RotateRoot = rotate
	opts.Workers = workers
	if scale > 0 && scale != 1 {
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
		if opts.BT.FileBytes < opts.BT.FragmentSize {
			opts.BT.FileBytes = opts.BT.FragmentSize
		}
	}

	fmt.Printf("dataset %s: %d hosts, ground truth: %s\n", d.Name, d.N(), d.TruthNote)
	par := "sequential"
	if workers > 0 {
		par = fmt.Sprintf("%d workers", workers)
	}
	fmt.Printf("measuring: %d iterations x %d fragments of %d bytes (%s)\n\n",
		opts.Iterations, opts.BT.NumFragments(), opts.BT.FragmentSize, par)

	res, err := repro.Run(d, opts)
	if err != nil {
		return err
	}

	fmt.Printf("measurement phase: %.1f simulated seconds total (%.1f s/broadcast)\n",
		res.TotalMeasurementTime, res.TotalMeasurementTime/float64(opts.Iterations))
	fmt.Printf("clustering: %d clusters, modularity Q=%.3f, NMI vs truth=%.3f\n\n",
		res.Partition.NumClusters(), res.Q, res.NMI)

	for ci, members := range res.Partition.Clusters() {
		names := make([]string, 0, len(members))
		for _, v := range members {
			names = append(names, d.HostName(v))
		}
		fmt.Printf("cluster %d (%d nodes): %s\n", ci, len(members), strings.Join(names, " "))
	}
	for _, b := range repro.Bottlenecks(res) {
		fmt.Println("bottleneck:", b)
	}
	fmt.Println()

	if save != "" {
		if err := persist.SaveGraph(save, res.Graph); err != nil {
			return err
		}
		fmt.Printf("measurement graph saved to %s\n\n", save)
	}

	if fig13 {
		t := &report.Table{
			Title:  "NMI convergence (Fig. 13 series)",
			Header: []string{"iteration", "NMI", "clusters", "Q"},
		}
		for _, rec := range res.Iterations {
			if rec.Clustered {
				t.AddRow(rec.Iteration, rec.NMI, rec.Partition.NumClusters(), rec.Q)
			}
		}
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
