// Command bttomo runs BitTorrent bandwidth tomography on a registered
// dataset or on a declarative scenario spec, and prints the discovered
// logical clusters, their modularity, and the NMI against the ground
// truth.
//
// Usage:
//
//	bttomo -dataset GT -iterations 10 -scale 0.25 -seed 7 -fig13
//	bttomo -spec myscenario.json -workers 4   # run a JSON scenario spec
//	bttomo -spec drift.json -dynamics=false   # ignore the spec's Dynamics timeline
//	bttomo -list                              # show the scenario registry
//	bttomo -dataset B -save b.json        # archive the measurement graph
//	bttomo -load b.json                   # re-cluster an archived graph
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"repro"
	"repro/internal/cluster"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	var (
		dataset    = flag.String("dataset", "GT", "registered dataset or scenario: "+strings.Join(repro.Datasets(), ", "))
		spec       = flag.String("spec", "", "run a declarative scenario spec from this JSON file instead of -dataset")
		dynamics   = flag.Bool("dynamics", true, "replay the scenario's Dynamics timeline (false measures the static base topology)")
		list       = flag.Bool("list", false, "print the scenario registry (built-ins + registered specs) and exit")
		iterations = flag.Int("iterations", 10, "number of BitTorrent broadcast iterations")
		scale      = flag.Float64("scale", 1.0, "broadcast payload scale (1.0 = the paper's 239 MB)")
		seed       = flag.Int64("seed", 1, "random seed")
		rotate     = flag.Bool("rotate-root", false, "rotate the broadcast root across iterations")
		workers    = flag.Int("workers", 0, "parallel measurement workers (0 = sequential; results are identical for any workers >= 1)")
		backend    = flag.String("backend", "", "measurement backend: "+strings.Join(repro.Backends(), ", ")+" (default sim; wire measures real loopback TCP swarms)")
		fig13      = flag.Bool("fig13", false, "print the per-iteration NMI convergence series")
		save       = flag.String("save", "", "write the aggregated measurement graph to this JSON file")
		load       = flag.String("load", "", "skip measurement: cluster an archived measurement graph")
	)
	flag.Parse()

	err := func() error {
		// The three modes are mutually exclusive; refuse ambiguous
		// combinations instead of silently preferring one.
		if *spec != "" && (*list || *load != "") {
			return fmt.Errorf("-spec cannot be combined with -list or -load")
		}
		if *list && *load != "" {
			return fmt.Errorf("-list cannot be combined with -load")
		}
		switch {
		case *list:
			return listRegistry(os.Stdout)
		case *load != "":
			return runArchived(*load, *seed)
		default:
			d, err := buildDataset(*dataset, *spec)
			if err != nil {
				return err
			}
			if !*dynamics {
				d.Timeline = nil
			}
			return run(d, *backend, *iterations, *scale, *seed, *workers, *rotate, *fig13, *save)
		}
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bttomo:", err)
		os.Exit(1)
	}
}

// buildDataset compiles either a spec file or a registered scenario name.
func buildDataset(dataset, specPath string) (*repro.Dataset, error) {
	if specPath == "" {
		return repro.NewDataset(dataset)
	}
	s, err := repro.LoadSpec(specPath)
	if err != nil {
		return nil, err
	}
	return s.Compile()
}

// listRegistry prints every registered scenario with its host count and
// ground-truth cluster count.
func listRegistry(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tHOSTS\tTRUTH CLUSTERS\tNOTE")
	for _, name := range repro.Datasets() {
		s, ok := scenario.Lookup(name)
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", s.Name, s.NumHosts(), len(s.Clusters()), s.Note)
	}
	return tw.Flush()
}

// runArchived clusters a previously saved measurement graph without
// re-measuring.
func runArchived(path string, seed int64) error {
	g, err := persist.LoadGraph(path)
	if err != nil {
		return err
	}
	res := cluster.Louvain(g, rand.New(rand.NewSource(seed)))
	fmt.Printf("archived measurement %s: %d nodes, %d edges\n", path, g.N(), g.EdgeCount())
	fmt.Printf("clustering: %d clusters, modularity Q=%.3f\n\n", res.Partition.NumClusters(), res.Q)
	for ci, members := range res.Partition.Clusters() {
		names := make([]string, 0, len(members))
		for _, v := range members {
			names = append(names, g.Label(v))
		}
		fmt.Printf("cluster %d (%d nodes): %s\n", ci, len(members), strings.Join(names, " "))
	}
	return nil
}

func run(d *repro.Dataset, backend string, iterations int, scale float64, seed int64, workers int, rotate, fig13 bool, save string) error {
	opts := repro.DefaultOptions()
	opts.Iterations = iterations
	opts.Seed = seed
	opts.RotateRoot = rotate
	opts.Workers = workers
	opts.Backend = backend
	if scale > 0 && scale != 1 {
		opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
		if opts.BT.FileBytes < opts.BT.FragmentSize {
			opts.BT.FileBytes = opts.BT.FragmentSize
		}
	}

	fmt.Printf("dataset %s: %d hosts, ground truth: %s\n", d.Name, d.N(), d.TruthNote)
	par := "sequential"
	if workers > 0 {
		par = fmt.Sprintf("%d workers", workers)
	}
	if backend != "" && backend != "sim" {
		par = backend + " backend, " + par
	}
	fmt.Printf("measuring: %d iterations x %d fragments of %d bytes (%s)\n",
		opts.Iterations, opts.BT.NumFragments(), opts.BT.FragmentSize, par)
	if n := d.Timeline.Len(); n > 0 {
		fmt.Printf("dynamics: %d scripted events replayed per iteration (link drift, failures, churn, bursts)\n", n)
	}
	fmt.Println()

	res, err := repro.Run(d, opts)
	if err != nil {
		return err
	}

	fmt.Printf("measurement phase: %.1f simulated seconds total (%.1f s/broadcast)\n",
		res.TotalMeasurementTime, res.TotalMeasurementTime/float64(opts.Iterations))
	fmt.Printf("clustering: %d clusters, modularity Q=%.3f, NMI vs truth=%.3f\n\n",
		res.Partition.NumClusters(), res.Q, res.NMI)

	for ci, members := range res.Partition.Clusters() {
		names := make([]string, 0, len(members))
		for _, v := range members {
			names = append(names, d.HostName(v))
		}
		fmt.Printf("cluster %d (%d nodes): %s\n", ci, len(members), strings.Join(names, " "))
	}
	for _, b := range repro.Bottlenecks(res) {
		fmt.Println("bottleneck:", b)
	}
	fmt.Println()

	if save != "" {
		if err := persist.SaveGraph(save, res.Graph); err != nil {
			return err
		}
		fmt.Printf("measurement graph saved to %s\n\n", save)
	}

	if fig13 {
		t := &report.Table{
			Title:  "NMI convergence (Fig. 13 series)",
			Header: []string{"iteration", "NMI", "clusters", "Q"},
		}
		for _, rec := range res.Iterations {
			if rec.Clustered {
				t.AddRow(rec.Iteration, rec.NMI, rec.Partition.NumClusters(), rec.Q)
			}
		}
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
