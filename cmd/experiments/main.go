// Command experiments regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md) and writes CSV series
// and DOT/SVG layout figures under -out.
//
// Usage:
//
//	experiments                 # full paper scale, all experiments
//	experiments -scale 0.1      # 10% payload for a quick pass
//	experiments -run datasets   # a single experiment
//	experiments -experiment drift   # alias for -run: the E17 dynamics sweep
//	experiments -specs a.json,b.json -workers 4  # sweep scenario specs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/persist"
	"repro/internal/scenario"
)

func main() {
	var (
		run = flag.String("run", "all", "experiment to run: all, "+strings.Join(experiments.Names, ", "))
		// -experiment is an alias for -run kept for discoverability
		// (`experiments -experiment drift`).
		experiment = flag.String("experiment", "", "alias for -run")
		scale      = flag.Float64("scale", 1.0, "broadcast payload scale (1.0 = the paper's 239 MB)")
		iters      = flag.Int("iterations", 0, "override iteration counts (0 = paper values)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "results", "directory for CSV/DOT/SVG artifacts (empty to skip)")
		workers    = flag.Int("workers", 0, "parallel workers for measurements, dataset sweeps and the experiment fan-out (0/1 = sequential)")
		specs      = flag.String("specs", "", "comma-separated scenario spec JSON files: sweep them instead of the paper experiments")
	)
	flag.Parse()
	if *experiment != "" {
		if *run != "all" && *run != *experiment {
			fmt.Fprintf(os.Stderr, "experiments: -run %s conflicts with -experiment %s; pass one\n", *run, *experiment)
			os.Exit(1)
		}
		*run = *experiment
	}

	r := experiments.New(experiments.Config{
		Scale:      *scale,
		Iterations: *iters,
		Seed:       *seed,
		Out:        os.Stdout,
		DataDir:    *out,
		Workers:    *workers,
	})

	start := time.Now()
	var err error
	switch {
	case *specs != "":
		err = sweepSpecFiles(r, strings.Split(*specs, ","))
	case *run == "all":
		err = r.RunAll()
	default:
		err = r.Run(*run)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %.1fs", time.Since(start).Seconds())
	if *out != "" {
		fmt.Printf("; artifacts in %s/", *out)
	}
	fmt.Println()
}

// sweepSpecFiles loads every spec file and runs the scenario sweep.
func sweepSpecFiles(r *experiments.Runner, paths []string) error {
	var loaded []*scenario.Spec
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		s, err := persist.LoadSpec(p)
		if err != nil {
			return err
		}
		loaded = append(loaded, s)
	}
	_, err := r.SweepSpecs(loaded)
	return err
}
