// Command campaign expands a declarative sweep campaign — scenarios
// crossed with option axes — and executes it against a content-addressed
// result archive: runs whose key is already archived load instead of
// recomputing, so re-invoking a killed or extended campaign resumes with
// zero redone work and a byte-identical aggregate.
//
// Usage:
//
//	campaign -spec grid.json -out runs/grid            # run (or resume) the grid
//	campaign -spec grid.json -out runs/grid -jobs 8    # shard across 8 workers
//	campaign -spec grid.json -dry-run                  # print the expanded grid only
//	campaign -spec grid.json -out runs/grid -resume=false  # force full recomputation
//
// Distributed fleets: start the same command with -fleet on any number of
// processes or machines sharing the output directory, and they partition
// the grid between them — each run claimed by exactly one live worker via
// leases/<key>.json, crashed workers' claims reclaimed after -lease-ttl,
// every completion recorded in the runs/index.json ledger, and the final
// aggregate byte-identical to a single-process run:
//
//	campaign -spec grid.json -out /shared/grid -fleet -owner box1 &
//	campaign -spec grid.json -out /shared/grid -fleet -owner box2
//
// The output directory holds manifest.json (per-run key, cache hit/miss,
// timing; in fleet mode, the cumulative every-run-exactly-once record),
// manifest.log (entries streamed as cells finish), runs/<key>.json result
// archives with their runs/index.json ledger, per-worker manifests under
// manifests/ in fleet mode, and the aggregate table as campaign.csv and
// summary.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro"
)

func main() {
	var (
		spec     = flag.String("spec", "", "campaign spec JSON file (required)")
		out      = flag.String("out", "", "campaign archive directory (required unless -dry-run)")
		jobs     = flag.Int("jobs", 1, "campaign-level worker pool; >1 forces each run's inner workers to 1 (fan-out at one level only)")
		resume   = flag.Bool("resume", true, "reuse archived results; false recomputes and rewrites every run (rejected with -fleet: clear the archive instead)")
		dryRun   = flag.Bool("dry-run", false, "print the expanded run grid and exit without measuring")
		fleetRun = flag.Bool("fleet", false, "join the fleet sharing -out: claim runs via lease files and cooperate with other -fleet processes")
		owner    = flag.String("owner", "", "fleet worker id for leases and manifests/ (default host-pid)")
		leaseTTL = flag.Duration("lease-ttl", time.Minute, "fleet lease staleness horizon; a worker silent this long is presumed crashed and its runs reclaimed")
	)
	flag.Parse()
	if err := run(*spec, *out, *jobs, *resume, *dryRun, *fleetRun, *owner, *leaseTTL); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(specPath, outDir string, jobs int, resume, dryRun, fleetRun bool, owner string, leaseTTL time.Duration) error {
	if specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	c, err := repro.LoadCampaign(specPath)
	if err != nil {
		return err
	}
	if dryRun {
		return printGrid(c)
	}
	if outDir == "" {
		return fmt.Errorf("-out is required (or use -dry-run)")
	}
	fmt.Printf("campaign %s: %d scenarios\n", c.Name, len(c.Scenarios))
	opts := repro.CampaignOptions{
		OutDir:   outDir,
		Jobs:     jobs,
		Resume:   resume,
		Log:      os.Stdout,
		Fleet:    fleetRun,
		Owner:    owner,
		LeaseTTL: leaseTTL,
	}
	var res *repro.CampaignOutcome
	if fleetRun {
		res, err = repro.JoinCampaign(c, opts)
	} else {
		res, err = repro.RunCampaign(c, opts)
	}
	if err != nil {
		return err
	}
	m := res.Manifest
	if fleetRun {
		fmt.Printf("\nfleet worker %s: ", m.Owner)
	} else {
		fmt.Printf("\n")
	}
	fmt.Printf("%d runs: %d cache hits, %d computed, %d deduplicated, %d failed (%.2fs wall)\n\n",
		m.Runs, m.Hits, m.Misses, m.Dups, m.Failures, m.WallSeconds)
	if err := res.Table.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("manifest: %s\naggregate: %s\n", res.ManifestPath, res.CSVPath)
	return nil
}

// printGrid lists the expanded run grid without executing it — the
// sanity check before committing hours of compute to a sweep.
func printGrid(c *repro.Campaign) error {
	runs, err := c.Expand()
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s expands to %d runs:\n", c.Name, len(runs))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RUN\tSCENARIO\tCONFIG\tKEY")
	for _, r := range runs {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", r.Index, r.Scenario, r.Config(), r.Key[:12])
	}
	return tw.Flush()
}
