// Command campaign manages declarative sweep campaigns end to end:
// executing grids against a content-addressed result archive, and
// querying that archive as a served product.
//
// Usage:
//
//	campaign run    -spec grid.json -out runs/grid [-jobs N] [-resume] [-fleet -owner X -lease-ttl D] [-trace DIR] [-metrics-addr host:port] [-report-to URL]
//	campaign run    -spec grid.json -dry-run [-out runs/grid]   # audit the grid (keys + hit/miss)
//	campaign status -out runs/grid [-json] [-v]                 # live fleet progress (+ phase breakdown)
//	campaign serve  -out runs/grid [-addr host:port] [-pprof] [-ingest]  # HTTP query service + live dashboard
//	campaign diff   -out runs/grid -base runs/prev              # regression report (exit 1 on regressions)
//	campaign gc     -out runs/grid [-spec grid.json] [-max-age D] [-max-runs N] [-dry-run]
//
// The flag-only form of earlier releases (campaign -spec ... -out ...)
// keeps working as an implicit `run` and prints a deprecation hint.
//
// run executes (or resumes) the grid: runs whose content key is already
// archived load instead of recomputing, any number of -fleet processes
// sharing -out partition the grid via leases, and the aggregate is
// byte-identical however the work was scheduled. With -dry-run it
// prints each expanded cell's content key and — when -out is given —
// its hit/miss status against that archive, so a resume can be audited
// before spending compute.
//
// run is also where observability switches on: -trace DIR writes one
// phase-trace JSONL per computed cell (use DIR = <out>/traces so
// `campaign status` finds them), -metrics-addr starts a live /metrics +
// /debug/pprof/ listener for the duration of the run, and -report-to
// URL POSTs each finished cell's manifest line to a remote `campaign
// serve -ingest` instance, so a dashboard on another machine follows
// this worker with no shared filesystem. All three are inert to the
// science: a dead hub, like a failed trace write, is logged and
// ignored — archives stay byte-identical with reporting on or off.
//
// status fuses the runs/index.json ledger, leases/ and per-owner
// manifests into live progress: how much of the grid is archived, who
// executed what, what is in flight, which leases went stale. With -v it
// adds per-backend and per-owner mean run durations from the ledger,
// and when <out>/traces holds phase traces it prints the aggregated
// phase breakdown — where the wall-clock actually went.
//
// serve exposes the same read path over HTTP (GET /status, /runs,
// /runs/{key}, /marginals/{axis}, /diff?base=) with ETag/If-None-Match
// keyed on the ledger, so dashboards and CI can poll cheaply while a
// fleet is still writing. "/marginals/intensity" is the dynamics axis.
// On top of the JSON views it serves the live observatory: GET
// /plots/{axis}.svg and /plots/phases.svg render the marginal curves
// and trace phase breakdown as deterministic SVG (same ETag
// discipline), GET /events streams typed archive changes as
// Server-Sent Events (replayable via Last-Event-ID), and GET
// /dashboard is a self-contained HTML page subscribed to all of it.
// GET /metrics exposes process telemetry in Prometheus text format
// (never cached), -pprof additionally mounts Go's profiling handlers
// under /debug/pprof/, and -ingest mounts POST /ingest so remote
// `campaign run -report-to` workers can stream their progress into
// this archive.
//
// diff compares two archives by content key: shared keys must hold
// byte-identical documents (the bit-identity contract), so any
// divergence is a regression and the command exits non-zero.
//
// gc bounds a long-lived archive: -max-age and -max-runs evict old
// runs (never leased ones), and with -spec the current expansion's keys
// are protected while stale-keyVersion archives are swept. The ledger
// is compacted to match.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/archive"
	"repro/internal/archive/serve"
	"repro/internal/telemetry"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	switch {
	case len(args) > 0 && !strings.HasPrefix(args[0], "-"):
		cmd = args[0]
		args = args[1:]
	case len(args) > 0:
		// The pre-subcommand invocation form; keep it working forever,
		// nudge once per invocation.
		fmt.Fprintln(os.Stderr, "campaign: note: flag-only invocation is deprecated; use `campaign run ...`")
	}
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "status":
		err = cmdStatus(args)
	case "serve":
		err = cmdServe(args)
	case "diff":
		err = cmdDiff(args)
	case "gc":
		err = cmdGC(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return
	default:
		err = fmt.Errorf("unknown subcommand %q (have: run, status, serve, diff, gc)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, `campaign manages sweep campaigns against a content-addressed archive.

  campaign run    -spec grid.json -out DIR [-jobs N] [-fleet -owner X] [-report-to URL]
  campaign run    -spec grid.json -dry-run [-out DIR]
  campaign status -out DIR [-json]
  campaign serve  -out DIR [-addr host:port] [-ingest]
  campaign diff   -out DIR -base DIR
  campaign gc     -out DIR [-spec grid.json] [-max-age D] [-max-runs N] [-dry-run]

Run 'campaign <subcommand> -h' for that subcommand's flags.`)
}

// The shared flag vocabulary: every subcommand that takes one of these
// flags registers it here, so -out and -spec mean the same thing (and
// document themselves the same way) across the whole surface.
func outFlag(fs *flag.FlagSet) *string {
	return fs.String("out", "", "campaign archive directory (runs/, leases/, manifests/, manifest.log live under it)")
}

func specFlag(fs *flag.FlagSet, usage string) *string {
	return fs.String("spec", "", usage)
}

// openStore opens the archive read path rooted at -out.
func openStore(out string) (*repro.Archive, error) {
	if out == "" {
		return nil, fmt.Errorf("-out is required")
	}
	return repro.OpenArchive(out)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	spec := specFlag(fs, "campaign spec JSON file (required)")
	out := outFlag(fs)
	jobs := fs.Int("jobs", 1, "campaign-level worker pool; >1 forces each run's inner workers to 1 (fan-out at one level only)")
	resume := fs.Bool("resume", true, "reuse archived results; false recomputes and rewrites every run (rejected with -fleet: clear the archive instead)")
	dryRun := fs.Bool("dry-run", false, "print the expanded run grid (with hit/miss against -out, when given) and exit without measuring")
	fleetRun := fs.Bool("fleet", false, "join the fleet sharing -out: claim runs via lease files and cooperate with other -fleet processes")
	owner := fs.String("owner", "", "fleet worker id for leases and manifests/ (default host-pid)")
	leaseTTL := fs.Duration("lease-ttl", time.Minute, "fleet lease staleness horizon; a worker silent this long is presumed crashed and its runs reclaimed")
	traceDir := fs.String("trace", "", "write one phase-trace JSONL per computed cell into this directory (use <out>/traces so `campaign status` aggregates them)")
	metricsAddr := fs.String("metrics-addr", "", "serve live /metrics and /debug/pprof/ on this address for the duration of the run")
	reportTo := fs.String("report-to", "", "POST each finished cell's manifest line to this `campaign serve -ingest` URL (progress crosses machines; failures are non-fatal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("run: -spec is required")
	}
	c, err := repro.LoadCampaign(*spec)
	if err != nil {
		return err
	}
	if *dryRun {
		return printGrid(c, *out)
	}
	if *out == "" {
		return fmt.Errorf("run: -out is required (or use -dry-run)")
	}
	fmt.Printf("campaign %s: %d scenarios\n", c.Name, len(c.Scenarios))
	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr); err != nil {
			return err
		}
	}
	opts := repro.CampaignOptions{
		OutDir:   *out,
		Jobs:     *jobs,
		Resume:   *resume,
		Log:      os.Stdout,
		Fleet:    *fleetRun,
		Owner:    *owner,
		LeaseTTL: *leaseTTL,
		TraceDir: *traceDir,
	}
	if *reportTo != "" {
		opts.Report = httpReporter(*reportTo)
		fmt.Printf("reporting progress to %s\n", *reportTo)
	}
	var res *repro.CampaignOutcome
	if *fleetRun {
		res, err = repro.JoinCampaign(c, opts)
	} else {
		res, err = repro.RunCampaign(c, opts)
	}
	if err != nil {
		return err
	}
	m := res.Manifest
	if *fleetRun {
		fmt.Printf("\nfleet worker %s: ", m.Owner)
	} else {
		fmt.Printf("\n")
	}
	fmt.Printf("%d runs: %d cache hits, %d computed, %d deduplicated, %d failed (%.2fs wall)\n\n",
		m.Runs, m.Hits, m.Misses, m.Dups, m.Failures, m.WallSeconds)
	if err := res.Table.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("manifest: %s\naggregate: %s\n", res.ManifestPath, res.CSVPath)
	return nil
}

// httpReporter builds the run's progress hook: POST one manifest line
// per finished cell to a remote `campaign serve -ingest` instance, so a
// dashboard on another machine follows this worker with no shared
// filesystem. Reporting is observability, not record-keeping — the
// short timeout and the executor's non-fatal handling mean a dead hub
// costs log noise, never a cell.
func httpReporter(url string) func(repro.CampaignEntry) error {
	if !strings.HasSuffix(url, "/ingest") {
		url = strings.TrimSuffix(url, "/") + "/ingest"
	}
	client := &http.Client{Timeout: 5 * time.Second}
	return func(e repro.CampaignEntry) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(append(data, '\n')))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("report: %s returned %s", url, resp.Status)
		}
		return nil
	}
}

// serveMetrics starts the debug listener a long `campaign run` can be
// watched through: live /metrics plus Go's profiling handlers. It is a
// diagnostic sidecar for this one process, so pprof is unconditionally
// mounted (unlike `campaign serve`, where it is opt-in) and the
// listener dies with the run.
func serveMetrics(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", telemetry.Default().Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	fmt.Printf("metrics on http://%s/metrics (pprof: /debug/pprof/)\n", l.Addr())
	go func() {
		_ = http.Serve(l, mux) // dies with the process
	}()
	return nil
}

// printGrid lists the expanded run grid without executing it — the
// sanity check before committing hours of compute to a sweep. With an
// archive directory it additionally probes each cell's content key
// against the archive, so an operator can audit exactly what a resume
// would reuse and what it would compute.
func printGrid(c *repro.Campaign, out string) error {
	runs, err := c.Expand()
	if err != nil {
		return err
	}
	var store *repro.Archive
	if out != "" {
		if store, err = repro.OpenArchive(out); err != nil {
			if !os.IsNotExist(err) {
				return err
			}
			store = nil // no archive yet: every cell is a miss
		}
	}
	fmt.Printf("campaign %s expands to %d runs:\n", c.Name, len(runs))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "RUN\tSCENARIO\tBACKEND\tCONFIG\tKEY"
	if out != "" {
		header += "\tCACHE"
	}
	fmt.Fprintln(tw, header)
	hits := 0
	for _, r := range runs {
		line := fmt.Sprintf("%d\t%s\t%s\t%s\t%s", r.Index, r.Scenario, r.Backend, r.Config(), r.Key)
		if out != "" {
			cache := "miss"
			if store != nil {
				if d, err := store.Get(r.Key); err == nil && d.Doc != nil {
					cache = "hit"
					hits++
				}
			}
			line += "\t" + cache
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("%d of %d runs archived in %s (%d to compute)\n", hits, len(runs), out, len(runs)-hits)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	out := outFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw status document instead of the summary")
	verbose := fs.Bool("v", false, "add per-backend and per-owner mean run durations from the ledger")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*out)
	if err != nil {
		return err
	}
	st, err := store.Status()
	if err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(os.Stdout, st)
	}
	name := st.Campaign
	if name == "" {
		name = "(not finalized)"
	}
	fmt.Printf("archive %s\ncampaign: %s\n", st.Dir, name)
	if st.GridRuns > 0 {
		fmt.Printf("grid: %d runs, %d archived\n", st.GridRuns, st.Archived)
	} else {
		fmt.Printf("archived: %d runs\n", st.Archived)
	}
	fmt.Printf("executed: %d (ledger, exactly-once; %d ledger lines)\n", st.Executed, st.LedgerLines)
	if len(st.Backends) > 0 {
		names := make([]string, 0, len(st.Backends))
		for b := range st.Backends {
			names = append(names, b)
		}
		sort.Strings(names)
		if *verbose {
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "BACKEND\tEXECUTED\tWALL\tMEAN")
			for _, b := range names {
				fmt.Fprintf(tw, "%s\t%d\t%.2fs\t%.3fs\n", b, st.Backends[b],
					st.BackendSeconds[b], st.BackendSeconds[b]/float64(st.Backends[b]))
			}
			if err := tw.Flush(); err != nil {
				return err
			}
		} else {
			parts := make([]string, len(names))
			for i, b := range names {
				parts[i] = fmt.Sprintf("%s %d", b, st.Backends[b])
			}
			fmt.Printf("backends: %s\n", strings.Join(parts, ", "))
		}
	}
	fmt.Printf("in flight: %d leases (%d stale)\nfinalized: %v\n", st.InFlight, st.StaleLeases, st.Finalized)
	if len(st.Owners) > 0 {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		header := "OWNER\tEXECUTED\tWALL\tMANIFEST"
		if *verbose {
			header = "OWNER\tEXECUTED\tWALL\tMEAN\tMANIFEST"
		}
		fmt.Fprintln(tw, header)
		for _, o := range st.Owners {
			man := "-"
			if o.Manifest != nil {
				man = fmt.Sprintf("%d runs: %d hit / %d miss / %d dup / %d failed",
					o.Manifest.Runs, o.Manifest.Hits, o.Manifest.Misses, o.Manifest.Dups, o.Manifest.Failures)
			}
			if *verbose {
				mean := "-"
				if o.Executed > 0 {
					mean = fmt.Sprintf("%.3fs", o.WallSeconds/float64(o.Executed))
				}
				fmt.Fprintf(tw, "%s\t%d\t%.2fs\t%s\t%s\n", o.Owner, o.Executed, o.WallSeconds, mean, man)
			} else {
				fmt.Fprintf(tw, "%s\t%d\t%.2fs\t%s\n", o.Owner, o.Executed, o.WallSeconds, man)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	for _, l := range st.Leases {
		state := "live"
		if l.Stale {
			state = "STALE"
		}
		fmt.Printf("lease %s… held by %s (epoch %d, %s)\n", l.Key[:12], l.Owner, l.Epoch, state)
	}
	return printPhaseBreakdown(store)
}

// printPhaseBreakdown aggregates <out>/traces into the per-phase time
// table — where a campaign's wall-clock actually went. Silent when no
// traces were recorded (the common case: -trace is opt-in).
func printPhaseBreakdown(store *repro.Archive) error {
	tr, err := store.Traces()
	if err != nil {
		return err
	}
	if tr.Files == 0 {
		return nil
	}
	var total float64
	for _, p := range tr.Phases {
		total += p.Seconds
	}
	fmt.Printf("\nphase breakdown (%d traced runs):\n", tr.Files)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tSPANS\tSECONDS\tSHARE")
	for _, p := range tr.Phases {
		share := 0.0
		if total > 0 {
			share = 100 * p.Seconds / total
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3fs\t%.1f%%\n", p.Phase, p.Spans, p.Seconds, share)
	}
	return tw.Flush()
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("campaign serve", flag.ExitOnError)
	out := outFlag(fs)
	addr := fs.String("addr", "127.0.0.1:8177", "listen address (host:port; :0 picks a free port)")
	withPprof := fs.Bool("pprof", false, "mount Go's profiling handlers under /debug/pprof/ (off by default: they expose process internals)")
	withIngest := fs.Bool("ingest", false, "mount POST /ingest, accepting manifest lines from remote `campaign run -report-to` workers (off by default: it appends to the archive)")
	eventsInterval := fs.Duration("events-interval", time.Second, "archive poll cadence behind the /events stream")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*out)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	endpoints := "/dashboard /events /status /runs /runs/{key} /marginals/{axis} /plots/{axis}.svg /plots/phases.svg /diff?base= /metrics"
	if *withIngest {
		endpoints += " POST:/ingest"
	}
	if *withPprof {
		endpoints += " /debug/pprof/"
	}
	fmt.Printf("serving %s on http://%s (endpoints: %s)\n", store.Dir(), l.Addr(), endpoints)
	fmt.Printf("dashboard: http://%s/dashboard\n", l.Addr())
	return http.Serve(l, serve.NewHandler(store, serve.Options{
		Pprof:         *withPprof,
		Ingest:        *withIngest,
		EventInterval: *eventsInterval,
	}))
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("campaign diff", flag.ExitOnError)
	out := outFlag(fs)
	base := fs.String("base", "", "baseline archive directory to compare against (required)")
	asJSON := fs.Bool("json", false, "print the raw diff document instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base == "" {
		return fmt.Errorf("diff: -base is required")
	}
	store, err := openStore(*out)
	if err != nil {
		return err
	}
	rep, err := store.Diff(*base)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("diff %s vs base %s\n", rep.Dir, rep.Base)
		fmt.Printf("common: %d  only here: %d  only base: %d  unreadable: %d\n",
			rep.Common, rep.OnlyHere, rep.OnlyBase, rep.Unreadable)
		for _, r := range rep.Regressions {
			fmt.Printf("REGRESSION %s…: %s here=%s base=%s\n", r.Key[:12], r.Field, r.Here, r.Base)
		}
		fmt.Printf("regressions: %d\n", rep.RegressionCount)
	}
	if rep.RegressionCount > 0 {
		return fmt.Errorf("%d shared keys diverged — the pipeline's behaviour changed between the archives", rep.RegressionCount)
	}
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("campaign gc", flag.ExitOnError)
	out := outFlag(fs)
	spec := specFlag(fs, "campaign spec whose current expansion is protected; archives outside it are swept as stale-keyVersion")
	maxAge := fs.Duration("max-age", 0, "evict archives older than this (0 = no age limit)")
	maxRuns := fs.Int("max-runs", 0, "cap the archive count, evicting oldest first (0 = no cap)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without removing anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*out)
	if err != nil {
		return err
	}
	opt := archive.GCOptions{MaxAge: *maxAge, MaxRuns: *maxRuns, DryRun: *dryRun}
	if *spec != "" {
		c, err := repro.LoadCampaign(*spec)
		if err != nil {
			return err
		}
		runs, err := c.Expand()
		if err != nil {
			return err
		}
		opt.Current = make(map[string]bool, len(runs))
		for _, r := range runs {
			opt.Current[r.Key] = true
		}
	}
	rep, err := store.GC(opt)
	if err != nil {
		return err
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	fmt.Printf("gc %s: scanned %d archives, %s %d (%d stale-version, %d expired, %d evicted), kept %d (%d protected), swept %d strays\n",
		store.Dir(), rep.Scanned, verb, rep.Removed,
		len(rep.StaleVersion), len(rep.Expired), len(rep.Evicted), rep.Kept, rep.Protected, rep.Strays)
	if rep.LedgerCompacted {
		fmt.Println("ledger compacted")
	}
	keys := append(append(append([]string(nil), rep.StaleVersion...), rep.Expired...), rep.Evicted...)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s %s\n", verb, k)
	}
	return nil
}

func writeJSON(w *os.File, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
