// Command benchparallel times the tomography measurement phase
// sequentially versus with a parallel worker pool on the same workload,
// verifies the two produce identical results, and writes the comparison as
// JSON — the BENCH_parallel.json artifact that seeds the repository's perf
// trajectory (see `make bench` and the CI bench smoke job).
//
// Usage:
//
//	benchparallel                          # BGTL, 8 iterations, 5% payload
//	benchparallel -workers 8 -scale 0.25   # heavier run
//	benchparallel -out BENCH_parallel.json
//
// Besides the overwritten snapshot, each successful run appends one
// timestamped line to -trajectory (default BENCH_trajectory.jsonl), the
// append-only perf history `jsonlcheck -schema trajectory` validates —
// per-PR speedups stop being a single overwritten file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/fleet"
	"repro/internal/persist"
)

// Report is the emitted JSON document.
type Report struct {
	Dataset    string  `json:"dataset"`
	Hosts      int     `json:"hosts"`
	Iterations int     `json:"iterations"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// SequentialSeconds times Workers=1 (the replica-path baseline);
	// ParallelSeconds times the requested worker count on the identical
	// workload.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	// Identical confirms the determinism contract held: same graph
	// weights, partition and NMI from both runs.
	Identical bool    `json:"identical"`
	NMI       float64 `json:"nmi"`
	SimSec    float64 `json:"simulated_seconds"`
	// SequentialPhases and ParallelPhases break each timed run down by
	// pipeline phase (measure, clone, merge, cluster, NMI), so a speedup
	// regression in the trajectory is attributable: a merge that grew, a
	// clone that got expensive, or the solve itself. In the parallel run
	// MeasureSeconds sums across workers and exceeds wall-clock; clone
	// time is a subset of measure time.
	SequentialPhases repro.PhaseTimings `json:"sequential_phases"`
	ParallelPhases   repro.PhaseTimings `json:"parallel_phases"`

	// The dynamics block times the same comparison on a DriftSites
	// scenario with a non-empty event timeline (link drift, churn,
	// bursts, a transient failure), so the bench trajectory also tracks
	// the dynamics replay path.
	DynamicsScenario          string  `json:"dynamics_scenario"`
	DynamicsEvents            int     `json:"dynamics_events"`
	DynamicsSequentialSeconds float64 `json:"dynamics_sequential_seconds"`
	DynamicsParallelSeconds   float64 `json:"dynamics_parallel_seconds"`
	DynamicsSpeedup           float64 `json:"dynamics_speedup"`
	DynamicsIdentical         bool    `json:"dynamics_identical"`
	DynamicsNMI               float64 `json:"dynamics_nmi"`
	// The dynamics phase blocks additionally attribute the per-iteration
	// timeline replay, which lives inside the clone phase.
	DynamicsSequentialPhases repro.PhaseTimings `json:"dynamics_sequential_phases"`
	DynamicsParallelPhases   repro.PhaseTimings `json:"dynamics_parallel_phases"`

	// The campaign block times the sweep orchestrator on a small grid:
	// one cold invocation that computes and archives every cell at the
	// requested job fan-out, then one warm invocation that must resolve
	// 100% of the grid from the content-addressed cache. CampaignIdentical
	// confirms the cold and warm aggregate CSVs are byte-identical — the
	// resume contract the campaign-smoke CI gate also asserts.
	CampaignRuns        int     `json:"campaign_runs"`
	CampaignJobs        int     `json:"campaign_jobs"`
	CampaignColdSeconds float64 `json:"campaign_cold_seconds"`
	CampaignWarmSeconds float64 `json:"campaign_warm_seconds"`
	CampaignWarmHits    int     `json:"campaign_warm_hits"`
	CampaignIdentical   bool    `json:"campaign_identical"`
}

func main() {
	var (
		dataset    = flag.String("dataset", "BGTL", "built-in dataset to measure")
		iters      = flag.Int("iterations", 8, "measurement iterations")
		scale      = flag.Float64("scale", 0.05, "broadcast payload scale (1.0 = the paper's 239 MB)")
		workers    = flag.Int("workers", 4, "parallel worker count to compare against Workers=1")
		out        = flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
		trajectory = flag.String("trajectory", "BENCH_trajectory.jsonl", "append a timestamped snapshot line to this JSONL trajectory (empty disables)")
	)
	flag.Parse()
	if err := run(*dataset, *iters, *scale, *workers, *out, *trajectory); err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
}

func run(dataset string, iters int, scale float64, workers int, out, trajectory string) error {
	if workers < 2 {
		return fmt.Errorf("need -workers >= 2 to compare against the single-worker baseline, got %d", workers)
	}
	opts := repro.DefaultOptions()
	opts.Iterations = iters
	opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
	if opts.BT.FileBytes < opts.BT.FragmentSize {
		opts.BT.FileBytes = opts.BT.FragmentSize
	}

	time1, res1, err := timedRun(dataset, opts, 1)
	if err != nil {
		return err
	}
	timeN, resN, err := timedRun(dataset, opts, workers)
	if err != nil {
		return err
	}

	// The same comparison with a non-empty dynamics timeline: the replay
	// path clones and mutates per-iteration network state, so it is
	// timed separately in the artifact.
	driftSpec := repro.DriftSitesSpec(3, 8, 890, 100, 0.5)
	dtime1, dres1, err := timedSpecRun(driftSpec, opts, 1)
	if err != nil {
		return err
	}
	dtimeN, dresN, err := timedSpecRun(driftSpec, opts, workers)
	if err != nil {
		return err
	}

	camp, err := timedCampaign(iters, scale, workers)
	if err != nil {
		return err
	}

	rep := Report{
		Dataset:           dataset,
		Hosts:             res1.Graph.N(),
		Iterations:        iters,
		Scale:             scale,
		Workers:           workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SequentialSeconds: time1,
		ParallelSeconds:   timeN,
		Identical:         identical(res1, resN),
		NMI:               resN.NMI,
		SimSec:            resN.TotalMeasurementTime,
		SequentialPhases:  res1.Phases,
		ParallelPhases:    resN.Phases,

		DynamicsScenario:          driftSpec.Name,
		DynamicsEvents:            len(driftSpec.Dynamics),
		DynamicsSequentialSeconds: dtime1,
		DynamicsParallelSeconds:   dtimeN,
		DynamicsIdentical:         identical(dres1, dresN),
		DynamicsNMI:               dresN.NMI,
		DynamicsSequentialPhases:  dres1.Phases,
		DynamicsParallelPhases:    dresN.Phases,

		CampaignRuns:        camp.runs,
		CampaignJobs:        workers,
		CampaignColdSeconds: camp.cold,
		CampaignWarmSeconds: camp.warm,
		CampaignWarmHits:    camp.warmHits,
		CampaignIdentical:   camp.identical,
	}
	if timeN > 0 {
		rep.Speedup = time1 / timeN
	}
	if dtimeN > 0 {
		rep.DynamicsSpeedup = dtime1 / dtimeN
	}

	if out == "-" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := persist.SaveJSON(out, rep); err != nil {
			return err
		}
		fmt.Printf("%s: %d hosts, %d iterations at %.0f%% payload: %.2fs sequential, %.2fs with %d workers (%.2fx), identical=%v\n",
			dataset, rep.Hosts, iters, scale*100, time1, timeN, workers, rep.Speedup, rep.Identical)
		p := rep.ParallelPhases
		fmt.Printf("  parallel phases: measure %.2fs across workers (clone %.2fs), merge %.2fs, cluster %.2fs, nmi %.2fs\n",
			p.MeasureSeconds, p.CloneSeconds, p.MergeSeconds, p.ClusterSeconds, p.NMISeconds)
		fmt.Printf("%s (%d dynamics events): %.2fs sequential, %.2fs with %d workers (%.2fx), identical=%v\n",
			rep.DynamicsScenario, rep.DynamicsEvents, dtime1, dtimeN, workers, rep.DynamicsSpeedup, rep.DynamicsIdentical)
		fmt.Printf("campaign (%d runs, %d jobs): %.2fs cold, %.2fs warm (%d cache hits), identical=%v\n",
			rep.CampaignRuns, rep.CampaignJobs, rep.CampaignColdSeconds, rep.CampaignWarmSeconds,
			rep.CampaignWarmHits, rep.CampaignIdentical)
		fmt.Println("wrote", out)
	}
	if !rep.Identical {
		return fmt.Errorf("workers=%d result diverged from workers=1 — determinism contract broken", workers)
	}
	if !rep.DynamicsIdentical {
		return fmt.Errorf("workers=%d dynamics result diverged from workers=1 — determinism contract broken", workers)
	}
	if rep.CampaignWarmHits != rep.CampaignRuns {
		return fmt.Errorf("warm campaign resolved %d of %d runs from cache — resume contract broken",
			rep.CampaignWarmHits, rep.CampaignRuns)
	}
	if !rep.CampaignIdentical {
		return fmt.Errorf("warm campaign aggregate diverged from cold — resume contract broken")
	}
	// All contracts held: record the snapshot in the append-only
	// trajectory (the history CI validates and archives per PR).
	if trajectory != "" {
		if err := appendTrajectory(trajectory, rep); err != nil {
			return fmt.Errorf("trajectory append: %w", err)
		}
		if out != "-" {
			fmt.Println("appended", trajectory)
		}
	}
	return nil
}

// TrajectoryPoint is one appended line of BENCH_trajectory.jsonl: the
// report's headline numbers plus a timestamp, small enough that years
// of history stay a trivially greppable file.
type TrajectoryPoint struct {
	Unix              int64   `json:"unix"`
	Dataset           string  `json:"dataset"`
	Hosts             int     `json:"hosts"`
	Iterations        int     `json:"iterations"`
	Scale             float64 `json:"scale"`
	Workers           int     `json:"workers"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	DynamicsSpeedup   float64 `json:"dynamics_speedup"`
	CampaignCold      float64 `json:"campaign_cold_seconds"`
	CampaignWarm      float64 `json:"campaign_warm_seconds"`
}

// appendTrajectory adds one whole-line O_APPEND record, the same
// torn-tolerant discipline as every other JSONL file in the repo.
func appendTrajectory(path string, rep Report) error {
	return fleet.AppendLine(path, TrajectoryPoint{
		Unix:              time.Now().Unix(),
		Dataset:           rep.Dataset,
		Hosts:             rep.Hosts,
		Iterations:        rep.Iterations,
		Scale:             rep.Scale,
		Workers:           rep.Workers,
		GOMAXPROCS:        rep.GOMAXPROCS,
		SequentialSeconds: rep.SequentialSeconds,
		ParallelSeconds:   rep.ParallelSeconds,
		Speedup:           rep.Speedup,
		DynamicsSpeedup:   rep.DynamicsSpeedup,
		CampaignCold:      rep.CampaignColdSeconds,
		CampaignWarm:      rep.CampaignWarmSeconds,
	})
}

// campaignTiming is the cold/warm comparison of the sweep orchestrator.
type campaignTiming struct {
	runs, warmHits int
	cold, warm     float64
	identical      bool
}

// timedCampaign executes a small two-scenario grid cold (every cell
// measured and archived) and warm (every cell from the cache) in a
// throwaway archive directory, comparing the aggregate bytes.
func timedCampaign(iters int, scale float64, jobs int) (campaignTiming, error) {
	var ct campaignTiming
	c, err := repro.NewCampaign("bench").
		Scenario("2x2", "GT").
		Iterations(iters).
		Seeds(1, 2).
		Scales(scale).
		Spec()
	if err != nil {
		return ct, err
	}
	dir, err := os.MkdirTemp("", "benchparallel-campaign-")
	if err != nil {
		return ct, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	cold, err := repro.RunCampaign(c, repro.CampaignOptions{OutDir: dir, Jobs: jobs, Resume: true})
	if err != nil {
		return ct, fmt.Errorf("cold campaign: %w", err)
	}
	ct.cold = time.Since(start).Seconds()
	coldCSV, err := os.ReadFile(cold.CSVPath)
	if err != nil {
		return ct, err
	}

	start = time.Now()
	warm, err := repro.RunCampaign(c, repro.CampaignOptions{OutDir: dir, Jobs: jobs, Resume: true})
	if err != nil {
		return ct, fmt.Errorf("warm campaign: %w", err)
	}
	ct.warm = time.Since(start).Seconds()
	warmCSV, err := os.ReadFile(warm.CSVPath)
	if err != nil {
		return ct, err
	}

	ct.runs = cold.Manifest.Runs
	ct.warmHits = warm.Manifest.Hits
	ct.identical = bytes.Equal(coldCSV, warmCSV)
	return ct, nil
}

// timedRun measures one tomography run's wall-clock at the given fan-out.
func timedRun(dataset string, opts repro.Options, workers int) (float64, *repro.Result, error) {
	opts.Workers = workers
	start := time.Now()
	res, err := repro.RunNamed(dataset, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("workers=%d: %w", workers, err)
	}
	return time.Since(start).Seconds(), res, nil
}

// timedSpecRun is timedRun on a freshly compiled scenario spec (the
// compile is outside the timed section; the measurement is what the
// trajectory tracks).
func timedSpecRun(spec *repro.Spec, opts repro.Options, workers int) (float64, *repro.Result, error) {
	d, err := spec.Compile()
	if err != nil {
		return 0, nil, err
	}
	opts.Workers = workers
	start := time.Now()
	res, err := repro.Run(d, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("%s workers=%d: %w", spec.Name, workers, err)
	}
	return time.Since(start).Seconds(), res, nil
}

// identical checks the determinism contract between two runs: identical
// measurement graphs (edge-exact), partitions and scores.
func identical(a, b *repro.Result) bool {
	if a.Graph.N() != b.Graph.N() || a.NMI != b.NMI || a.Q != b.Q {
		return false
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	for i := range a.Partition.Labels {
		if a.Partition.Labels[i] != b.Partition.Labels[i] {
			return false
		}
	}
	return true
}
