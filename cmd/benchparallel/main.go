// Command benchparallel times the tomography measurement phase
// sequentially versus with a parallel worker pool on the same workload,
// verifies the two produce identical results, and writes the comparison as
// JSON — the BENCH_parallel.json artifact that seeds the repository's perf
// trajectory (see `make bench` and the CI bench smoke job).
//
// Usage:
//
//	benchparallel                          # BGTL, 8 iterations, 5% payload
//	benchparallel -workers 8 -scale 0.25   # heavier run
//	benchparallel -out BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
)

// Report is the emitted JSON document.
type Report struct {
	Dataset    string  `json:"dataset"`
	Hosts      int     `json:"hosts"`
	Iterations int     `json:"iterations"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// SequentialSeconds times Workers=1 (the replica-path baseline);
	// ParallelSeconds times the requested worker count on the identical
	// workload.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	// Identical confirms the determinism contract held: same graph
	// weights, partition and NMI from both runs.
	Identical bool    `json:"identical"`
	NMI       float64 `json:"nmi"`
	SimSec    float64 `json:"simulated_seconds"`

	// The dynamics block times the same comparison on a DriftSites
	// scenario with a non-empty event timeline (link drift, churn,
	// bursts, a transient failure), so the bench trajectory also tracks
	// the dynamics replay path.
	DynamicsScenario          string  `json:"dynamics_scenario"`
	DynamicsEvents            int     `json:"dynamics_events"`
	DynamicsSequentialSeconds float64 `json:"dynamics_sequential_seconds"`
	DynamicsParallelSeconds   float64 `json:"dynamics_parallel_seconds"`
	DynamicsSpeedup           float64 `json:"dynamics_speedup"`
	DynamicsIdentical         bool    `json:"dynamics_identical"`
	DynamicsNMI               float64 `json:"dynamics_nmi"`
}

func main() {
	var (
		dataset = flag.String("dataset", "BGTL", "built-in dataset to measure")
		iters   = flag.Int("iterations", 8, "measurement iterations")
		scale   = flag.Float64("scale", 0.05, "broadcast payload scale (1.0 = the paper's 239 MB)")
		workers = flag.Int("workers", 4, "parallel worker count to compare against Workers=1")
		out     = flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	)
	flag.Parse()
	if err := run(*dataset, *iters, *scale, *workers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
}

func run(dataset string, iters int, scale float64, workers int, out string) error {
	if workers < 2 {
		return fmt.Errorf("need -workers >= 2 to compare against the single-worker baseline, got %d", workers)
	}
	opts := repro.DefaultOptions()
	opts.Iterations = iters
	opts.BT.FileBytes = int(float64(opts.BT.FileBytes) * scale)
	if opts.BT.FileBytes < opts.BT.FragmentSize {
		opts.BT.FileBytes = opts.BT.FragmentSize
	}

	time1, res1, err := timedRun(dataset, opts, 1)
	if err != nil {
		return err
	}
	timeN, resN, err := timedRun(dataset, opts, workers)
	if err != nil {
		return err
	}

	// The same comparison with a non-empty dynamics timeline: the replay
	// path clones and mutates per-iteration network state, so it is
	// timed separately in the artifact.
	driftSpec := repro.DriftSitesSpec(3, 8, 890, 100, 0.5)
	dtime1, dres1, err := timedSpecRun(driftSpec, opts, 1)
	if err != nil {
		return err
	}
	dtimeN, dresN, err := timedSpecRun(driftSpec, opts, workers)
	if err != nil {
		return err
	}

	rep := Report{
		Dataset:           dataset,
		Hosts:             res1.Graph.N(),
		Iterations:        iters,
		Scale:             scale,
		Workers:           workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SequentialSeconds: time1,
		ParallelSeconds:   timeN,
		Identical:         identical(res1, resN),
		NMI:               resN.NMI,
		SimSec:            resN.TotalMeasurementTime,

		DynamicsScenario:          driftSpec.Name,
		DynamicsEvents:            len(driftSpec.Dynamics),
		DynamicsSequentialSeconds: dtime1,
		DynamicsParallelSeconds:   dtimeN,
		DynamicsIdentical:         identical(dres1, dresN),
		DynamicsNMI:               dresN.NMI,
	}
	if timeN > 0 {
		rep.Speedup = time1 / timeN
	}
	if dtimeN > 0 {
		rep.DynamicsSpeedup = dtime1 / dtimeN
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d hosts, %d iterations at %.0f%% payload: %.2fs sequential, %.2fs with %d workers (%.2fx), identical=%v\n",
			dataset, rep.Hosts, iters, scale*100, time1, timeN, workers, rep.Speedup, rep.Identical)
		fmt.Printf("%s (%d dynamics events): %.2fs sequential, %.2fs with %d workers (%.2fx), identical=%v\n",
			rep.DynamicsScenario, rep.DynamicsEvents, dtime1, dtimeN, workers, rep.DynamicsSpeedup, rep.DynamicsIdentical)
		fmt.Println("wrote", out)
	}
	if !rep.Identical {
		return fmt.Errorf("workers=%d result diverged from workers=1 — determinism contract broken", workers)
	}
	if !rep.DynamicsIdentical {
		return fmt.Errorf("workers=%d dynamics result diverged from workers=1 — determinism contract broken", workers)
	}
	return nil
}

// timedRun measures one tomography run's wall-clock at the given fan-out.
func timedRun(dataset string, opts repro.Options, workers int) (float64, *repro.Result, error) {
	opts.Workers = workers
	start := time.Now()
	res, err := repro.RunNamed(dataset, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("workers=%d: %w", workers, err)
	}
	return time.Since(start).Seconds(), res, nil
}

// timedSpecRun is timedRun on a freshly compiled scenario spec (the
// compile is outside the timed section; the measurement is what the
// trajectory tracks).
func timedSpecRun(spec *repro.Spec, opts repro.Options, workers int) (float64, *repro.Result, error) {
	d, err := spec.Compile()
	if err != nil {
		return 0, nil, err
	}
	opts.Workers = workers
	start := time.Now()
	res, err := repro.Run(d, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("%s workers=%d: %w", spec.Name, workers, err)
	}
	return time.Since(start).Seconds(), res, nil
}

// identical checks the determinism contract between two runs: identical
// measurement graphs (edge-exact), partitions and scores.
func identical(a, b *repro.Result) bool {
	if a.Graph.N() != b.Graph.N() || a.NMI != b.NMI || a.Q != b.Q {
		return false
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	for i := range a.Partition.Labels {
		if a.Partition.Labels[i] != b.Partition.Labels[i] {
			return false
		}
	}
	return true
}
