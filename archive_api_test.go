package repro

import (
	"path/filepath"
	"testing"
)

// The archive facade end to end: run a small campaign, then query it
// back through OpenArchive / ArchiveStatus / DiffArchives without ever
// touching runs/ paths directly.
func TestArchiveFacadeQueriesCampaignOutput(t *testing.T) {
	c, err := NewCampaign("facade").
		Scenario("2x2").
		Iterations(2).
		Seeds(1, 2).
		Scales(0.02).
		Spec()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "camp")
	out, err := RunCampaign(c, CampaignOptions{OutDir: dir, Jobs: 2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(out.Runs) {
		t.Fatalf("archive lists %d runs, campaign ran %d", len(runs), len(out.Runs))
	}
	detail, err := st.Get(out.Runs[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Doc == nil {
		t.Fatal("archived document missing")
	}

	status, err := ArchiveStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if status.Executed != 2 || status.Archived != 2 || !status.Finalized {
		t.Fatalf("status wrong: %+v", status)
	}

	rep, err := DiffArchives(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Common != 2 || rep.RegressionCount != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}

	m, err := st.Marginals("seed")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells != 2 || len(m.Points) != 2 {
		t.Fatalf("seed marginal wrong: %+v", m)
	}
}
