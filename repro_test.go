package repro

import (
	"testing"
)

func smallOptions(iters int) Options {
	opts := DefaultOptions()
	opts.Iterations = iters
	opts.BT.FileBytes = 1000 * opts.BT.FragmentSize
	return opts
}

func TestDatasetsList(t *testing.T) {
	names := Datasets()
	if len(names) != 6 {
		t.Fatalf("Datasets() = %v, want 6 entries", names)
	}
	if names[0] != "2x2" || names[5] != "BGTL" {
		t.Fatalf("dataset order = %v", names)
	}
	// The returned slice is a copy; mutating it must not corrupt the
	// registry order.
	names[0] = "corrupted"
	if Datasets()[0] != "2x2" {
		t.Fatal("Datasets() exposes internal state")
	}
}

func TestNewDatasetUnknown(t *testing.T) {
	if _, err := NewDataset("atlantis"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunNamedTwoByTwo(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.NumClusters() != 1 {
		t.Fatalf("2x2 clusters = %d, want 1", res.Partition.NumClusters())
	}
	if res.NMI < 0.99 {
		t.Fatalf("2x2 NMI = %.3f, want 1", res.NMI)
	}
}

func TestRunFreshDatasetTwice(t *testing.T) {
	// Each NewDataset carries its own simulator; two runs are identical.
	a, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Q != b.Q || a.TotalMeasurementTime != b.TotalMeasurementTime {
		t.Fatal("identical runs diverged")
	}
}

func TestDefaultOptionsArePaperScale(t *testing.T) {
	opts := DefaultOptions()
	if opts.BT.NumFragments() != 15259 {
		t.Fatalf("default fragments = %d, want 15259 (239 MB / 16 KiB)", opts.BT.NumFragments())
	}
	if opts.Iterations != 30 {
		t.Fatalf("default iterations = %d, want 30", opts.Iterations)
	}
}

func TestFacadeMeasurementRoundTrip(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.json"
	if err := SaveMeasurement(path, res.Graph); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMeasurement(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != res.Graph.N() || back.TotalWeight() != res.Graph.TotalWeight() {
		t.Fatal("measurement changed in archive round trip")
	}
}

func TestFacadeBottlenecks(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 finds a single cluster: no bottlenecks.
	if bs := Bottlenecks(res); len(bs) != 0 {
		t.Fatalf("2x2 reported %d bottlenecks, want 0", len(bs))
	}
}

func TestFacadeCollectiveScheduling(t *testing.T) {
	d, err := NewDataset("2x2")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BroadcastBinomial([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteBroadcast(d, sched, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 || res.Transfers != 3 {
		t.Fatalf("unexpected broadcast result %+v", res)
	}
	aware, err := BroadcastClusterAware([][]int{{0, 1}, {2, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteBroadcast(d, aware, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	red, err := ReduceClusterAware([][]int{{0, 1}, {2, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteReduce(d, red, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHierarchy(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHierarchy(res, DefaultHierarchyOptions())
	if h == nil || len(h.Members) != 4 {
		t.Fatal("hierarchy root malformed")
	}
	score := HierarchicalNMI([]int{0, 0, 0, 0}, h)
	if score < 0 || score > 1 {
		t.Fatalf("hierarchical NMI out of range: %g", score)
	}
}

func TestParallelOptionsRunsIdenticallyToSequentialReplica(t *testing.T) {
	run := func(opts Options) *Result {
		res, err := RunNamed("2x2", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	opts := smallOptions(3)
	opts.Workers = 4
	par := run(opts)
	opts.Workers = 1
	one := run(opts)
	if par.NMI != one.NMI || par.Q != one.Q ||
		par.Graph.TotalWeight() != one.Graph.TotalWeight() {
		t.Fatalf("Workers=4 diverged from Workers=1: NMI %v vs %v, Q %v vs %v",
			par.NMI, one.NMI, par.Q, one.Q)
	}
	if ParallelOptions(4).Workers != 4 {
		t.Fatal("ParallelOptions did not set Workers")
	}
	if ParallelOptions(4).Iterations != DefaultOptions().Iterations {
		t.Fatal("ParallelOptions drifted from DefaultOptions")
	}
}
