package repro

import (
	"sort"
	"testing"
)

func smallOptions(iters int) Options {
	opts := DefaultOptions()
	opts.Iterations = iters
	opts.BT.FileBytes = 1000 * opts.BT.FragmentSize
	return opts
}

func TestDatasetsList(t *testing.T) {
	// The registry is extensible (RegisterSpec); names come back sorted,
	// so CLI listings and docs stay stable no matter when a spec was
	// registered.
	names := Datasets()
	if len(names) < 6 {
		t.Fatalf("Datasets() = %v, want at least the 6 built-ins", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Datasets() = %v, want sorted names", names)
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range []string{"2x2", "B", "BT", "GT", "BGT", "BGTL"} {
		if !have[w] {
			t.Fatalf("Datasets() = %v, missing built-in %q", names, w)
		}
	}
	// The returned slice is a copy; mutating it must not corrupt the
	// registry order.
	names[0] = "corrupted"
	if Datasets()[0] == "corrupted" {
		t.Fatal("Datasets() exposes internal state")
	}
}

func TestNewDatasetUnknown(t *testing.T) {
	if _, err := NewDataset("atlantis"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunNamedTwoByTwo(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.NumClusters() != 1 {
		t.Fatalf("2x2 clusters = %d, want 1", res.Partition.NumClusters())
	}
	if res.NMI < 0.99 {
		t.Fatalf("2x2 NMI = %.3f, want 1", res.NMI)
	}
}

func TestRunFreshDatasetTwice(t *testing.T) {
	// Each NewDataset carries its own simulator; two runs are identical.
	a, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Q != b.Q || a.TotalMeasurementTime != b.TotalMeasurementTime {
		t.Fatal("identical runs diverged")
	}
}

func TestDefaultOptionsArePaperScale(t *testing.T) {
	opts := DefaultOptions()
	if opts.BT.NumFragments() != 15259 {
		t.Fatalf("default fragments = %d, want 15259 (239 MB / 16 KiB)", opts.BT.NumFragments())
	}
	if opts.Iterations != 30 {
		t.Fatalf("default iterations = %d, want 30", opts.Iterations)
	}
}

func TestFacadeMeasurementRoundTrip(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.json"
	if err := SaveMeasurement(path, res.Graph); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMeasurement(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != res.Graph.N() || back.TotalWeight() != res.Graph.TotalWeight() {
		t.Fatal("measurement changed in archive round trip")
	}
}

func TestFacadeBottlenecks(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 finds a single cluster: no bottlenecks.
	if bs := Bottlenecks(res); len(bs) != 0 {
		t.Fatalf("2x2 reported %d bottlenecks, want 0", len(bs))
	}
}

func TestFacadeCollectiveScheduling(t *testing.T) {
	d, err := NewDataset("2x2")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BroadcastBinomial([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteBroadcast(d, sched, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 || res.Transfers != 3 {
		t.Fatalf("unexpected broadcast result %+v", res)
	}
	aware, err := BroadcastClusterAware([][]int{{0, 1}, {2, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteBroadcast(d, aware, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	red, err := ReduceClusterAware([][]int{{0, 1}, {2, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteReduce(d, red, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHierarchy(t *testing.T) {
	res, err := RunNamed("2x2", smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHierarchy(res, DefaultHierarchyOptions())
	if h == nil || len(h.Members) != 4 {
		t.Fatal("hierarchy root malformed")
	}
	score := HierarchicalNMI([]int{0, 0, 0, 0}, h)
	if score < 0 || score > 1 {
		t.Fatalf("hierarchical NMI out of range: %g", score)
	}
}

// The whole declarative loop through the public API: build a spec
// fluently, archive it as JSON, load it back, register it, and run it —
// with parallel measurement — both via RunSpec and via its registry name.
func TestSpecEndToEnd(t *testing.T) {
	spec, err := NewSpec("e2e-twin").
		Note("two flat sites").
		Link("eth", 890, 50e-6).
		Link("wan", 50, 4e-3).
		Switch("core").
		FlatSite("left", "core", 4, "eth", "wan").
		FlatSite("right", "core", 4, "eth", "wan").
		Spec()
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/twin.json"
	if err := SaveSpec(path, spec); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}

	opts := smallOptions(4)
	// Small sites need more per-edge signal than the built-in runs.
	opts.BT.FileBytes = 3000 * opts.BT.FragmentSize
	opts.Workers = 2 // parallel measurement straight from a file-loaded spec
	res, err := RunSpec(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.NumClusters() != 2 || res.NMI < 0.999 {
		t.Fatalf("spec run found %d clusters at NMI %.3f, want 2 at 1.0",
			res.Partition.NumClusters(), res.NMI)
	}

	if err := RegisterSpec(loaded); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Datasets() {
		if name == "e2e-twin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered spec missing from Datasets() = %v", Datasets())
	}
	viaName, err := RunNamed("e2e-twin", opts)
	if err != nil {
		t.Fatal(err)
	}
	if viaName.NMI != res.NMI || viaName.Q != res.Q {
		t.Fatalf("registry run diverged from direct run: NMI %v vs %v, Q %v vs %v",
			viaName.NMI, res.NMI, viaName.Q, res.Q)
	}
	if err := RegisterSpec(loaded); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// The committed spec fixture (also exercised by `make spec-smoke` and the
// CI workflow through `bttomo -spec`) must stay loadable and true to its
// declared shape.
func TestSpecFixtureLoads(t *testing.T) {
	spec, err := LoadSpec("testdata/specs/twin.json")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "twin" || spec.NumHosts() != 8 || len(spec.Clusters()) != 2 {
		t.Fatalf("fixture = %s with %d hosts, %d clusters; want twin/8/2",
			spec.Name, spec.NumHosts(), len(spec.Clusters()))
	}
	if _, err := spec.Compile(); err != nil {
		t.Fatal(err)
	}
}

// The generator re-exports must produce runnable specs.
func TestGeneratorSpecsCompileAndRun(t *testing.T) {
	for _, spec := range []*Spec{
		NSitesSpec(2, 3, 890, 100),
		FatTreeSpec(2, 2, 2, 890, 890, 100),
		SkewedSitesSpec(2, 3, 890, 200, 0.5),
	} {
		d, err := spec.Compile()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if _, err := Run(d, smallOptions(2)); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestParallelOptionsRunsIdenticallyToSequentialReplica(t *testing.T) {
	run := func(opts Options) *Result {
		res, err := RunNamed("2x2", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	opts := smallOptions(3)
	opts.Workers = 4
	par := run(opts)
	opts.Workers = 1
	one := run(opts)
	if par.NMI != one.NMI || par.Q != one.Q ||
		par.Graph.TotalWeight() != one.Graph.TotalWeight() {
		t.Fatalf("Workers=4 diverged from Workers=1: NMI %v vs %v, Q %v vs %v",
			par.NMI, one.NMI, par.Q, one.Q)
	}
	if ParallelOptions(4).Workers != 4 {
		t.Fatal("ParallelOptions did not set Workers")
	}
	if ParallelOptions(4).Iterations != DefaultOptions().Iterations {
		t.Fatal("ParallelOptions drifted from DefaultOptions")
	}
}

// The fluent derivations compose, return values (never mutate their
// receiver), and the deprecated ParallelOptions helper remains an exact
// thin wrapper over the fluent form.
func TestFluentOptionDerivations(t *testing.T) {
	base := DefaultOptions()
	derived := base.WithWorkers(4).WithIterations(10).WithSeed(7)
	if derived.Workers != 4 || derived.Iterations != 10 || derived.Seed != 7 {
		t.Fatalf("chain did not apply: %+v", derived)
	}
	if base.Workers != DefaultOptions().Workers || base.Iterations != DefaultOptions().Iterations {
		t.Fatal("WithWorkers mutated its receiver")
	}
	if derived.TopFraction != base.TopFraction || derived.BT != base.BT {
		t.Fatal("chain disturbed unrelated fields")
	}
	if got, want := ParallelOptions(4), DefaultOptions().WithWorkers(4); got != want {
		t.Fatalf("ParallelOptions diverged from DefaultOptions().WithWorkers: %+v vs %+v", got, want)
	}
}
